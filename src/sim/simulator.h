// Deterministic discrete-event simulator.
//
// A single-threaded event loop over (time, sequence) ordered continuations.
// All awaitable primitives (delay, Event, Channel, Semaphore, resources)
// schedule coroutine resumptions through this queue, so execution order is a
// pure function of the program and its seeds — every experiment in this
// repository is reproducible bit-for-bit.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <limits>
#include <queue>
#include <vector>

#include "common/units.h"
#include "sim/task.h"

namespace hpres::sim {

class Simulator {
 public:
  /// next_event_time() sentinel for an empty queue.
  static constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time (ns since simulation start).
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Number of events executed so far (diagnostic).
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return executed_;
  }

  /// Schedules `h` to resume after `delay` (>= 0) simulated nanoseconds.
  /// Events at equal times run in scheduling (FIFO) order. A negative delay
  /// is a bug in the caller — typically a cross-shard message stamped
  /// before the receiver's clock — and asserts in debug builds; release
  /// builds keep the historical clamp-to-now behaviour.
  void schedule(std::coroutine_handle<> h, SimDur delay = 0) {
    assert(delay >= 0 && "negative schedule() delay (stale timestamp?)");
    queue_.push(Scheduled{now_ + (delay < 0 ? 0 : delay), next_seq_++, h});
  }

  /// Starts a detached process. The process begins at the current simulated
  /// time once the event loop runs; its frame is destroyed on completion.
  /// A process must run to completion before the Simulator is destroyed
  /// (drain with run()).
  void spawn(Task<void> task);

  /// Starts a detached process at absolute simulated time `at` (>= now).
  /// Used by the shard runtime to merge cross-shard messages at their due
  /// time without disturbing the window computation.
  void spawn_at(SimTime at, Task<void> task);

  /// Awaitable: suspends the caller for `d` simulated nanoseconds.
  [[nodiscard]] auto delay(SimDur d) noexcept {
    struct Awaiter {
      Simulator* sim;
      SimDur dur;
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const {
        sim->schedule(h, dur);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, d};
  }

  /// Runs until the event queue is empty. Returns the final simulated time.
  SimTime run();

  /// Runs until the queue is empty or simulated time would exceed
  /// `deadline`; events after the deadline stay queued.
  SimTime run_until(SimTime deadline);

  /// Conservative-window run: executes every event strictly before `end`,
  /// leaves events at or after `end` queued, then advances the clock to
  /// `end`. The strict bound is what makes the shard lookahead proof work:
  /// a message sent by a peer shard inside the same window is due at
  /// >= `end`, so it can still be merged at its exact timestamp afterwards.
  SimTime run_window(SimTime end);

  /// Timestamp of the earliest queued event, or kNever when idle. This is
  /// the per-shard horizon the conservative scheduler synchronizes on.
  [[nodiscard]] SimTime next_event_time() const noexcept {
    return queue_.empty() ? kNever : queue_.top().at;
  }

  /// True if no events remain.
  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }

 private:
  struct Scheduled {
    SimTime at;
    std::uint64_t seq;
    std::coroutine_handle<> handle;

    // std::priority_queue is a max-heap; invert for earliest-first.
    friend bool operator<(const Scheduled& a, const Scheduled& b) noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Scheduled> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace hpres::sim
