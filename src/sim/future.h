// Promise/Future pair for decoupled completion signalling inside the
// simulator — the mechanism behind non-blocking KV operations: `iset/iget`
// return a Future the caller later waits on (memcached_wait semantics).
//
// State is shared_ptr-owned, so a Future outliving its Promise (or vice
// versa) is safe; both ends are single-threaded simulator objects.
#pragma once

#include <cassert>
#include <memory>
#include <optional>
#include <utility>

#include "sim/sync.h"

namespace hpres::sim {

template <typename T>
class Future;

template <typename T>
class Promise {
 public:
  explicit Promise(Simulator& sim) : state_(std::make_shared<State>(sim)) {}

  /// Fulfills the promise; at most once.
  void set_value(T value) {
    assert(!state_->value.has_value() && "Promise fulfilled twice");
    state_->value.emplace(std::move(value));
    state_->event.set();
  }

  [[nodiscard]] Future<T> get_future() const { return Future<T>{state_}; }

 private:
  friend class Future<T>;
  struct State {
    explicit State(Simulator& sim) : event(sim) {}
    Event event;
    std::optional<T> value;
  };

  std::shared_ptr<State> state_;
};

/// Awaitable handle to a Promise's eventual value. Copyable: several waiters
/// may await the same completion; each receives a copy of the value.
template <typename T>
class Future {
 public:
  Future() = default;

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }
  [[nodiscard]] bool ready() const noexcept {
    return state_ && state_->value.has_value();
  }

  /// Suspends until the promise is fulfilled, then returns the value.
  Task<T> wait() const {
    auto state = state_;  // keep alive across suspension
    assert(state && "waiting on an invalid Future");
    co_await state->event.wait();
    co_return *state->value;
  }

  /// Suspends until the promise is fulfilled or `timeout` simulated
  /// nanoseconds pass; nullopt on timeout (the deadline primitive behind
  /// RPC timeouts). The shared state stays valid, so a late fulfillment is
  /// still observable through ready()/try_get().
  Task<std::optional<T>> wait_for(SimDur timeout) const {
    auto state = state_;  // keep alive across suspension
    assert(state && "waiting on an invalid Future");
    const bool fulfilled = co_await state->event.wait_for(timeout);
    if (!fulfilled) co_return std::nullopt;
    co_return *state->value;
  }

  /// Non-suspending poll (memcached_test semantics).
  [[nodiscard]] const T* try_get() const noexcept {
    return ready() ? &*state_->value : nullptr;
  }

 private:
  friend class Promise<T>;
  explicit Future(std::shared_ptr<typename Promise<T>::State> s)
      : state_(std::move(s)) {}

  std::shared_ptr<typename Promise<T>::State> state_;
};

}  // namespace hpres::sim
