// Coroutine task type for the discrete-event simulator.
//
// `Task<T>` is a lazy coroutine: it does not run until awaited (or handed to
// `Simulator::spawn`). Awaiting a Task transfers control symmetrically into
// the child and resumes the parent when the child finishes — no simulated
// time passes across a plain Task boundary; time only advances through the
// Simulator's awaitables (delay, channels, resources).
//
// Lifetime rules (C++ Core Guidelines CP.51/CP.53 apply throughout this
// project): coroutines are functions or member functions, never capturing
// lambdas, and take parameters by value so the coroutine frame owns them.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace hpres::sim {

template <typename T>
class Task;

namespace detail {

/// Final awaiter: resumes the awaiting ("continuation") coroutine, if any,
/// via symmetric transfer. Keeps the frame alive so the Task destructor can
/// retrieve the result and destroy it.
template <typename Promise>
struct FinalAwaiter {
  [[nodiscard]] bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    if (auto cont = h.promise().continuation; cont) return cont;
    return std::noop_coroutine();
  }
  void await_resume() const noexcept {}
};

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

}  // namespace detail

/// Lazy awaitable coroutine returning T (or void).
template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;

    Task get_return_object() noexcept {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    detail::FinalAwaiter<promise_type> final_suspend() noexcept { return {}; }
    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  Task() noexcept = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const noexcept {
    return static_cast<bool>(handle_);
  }
  [[nodiscard]] bool done() const noexcept {
    return handle_ && handle_.done();
  }

  /// Awaiting a Task starts it (symmetric transfer) and yields its result.
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;

      [[nodiscard]] bool await_ready() const noexcept {
        return !handle || handle.done();
      }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> awaiting) noexcept {
        handle.promise().continuation = awaiting;
        return handle;
      }
      T await_resume() {
        auto& p = handle.promise();
        if (p.exception) std::rethrow_exception(p.exception);
        assert(p.value.has_value() && "Task finished without a value");
        return std::move(*p.value);
      }
    };
    return Awaiter{handle_};
  }

  /// Internal: release ownership of the frame (used by Simulator::spawn).
  std::coroutine_handle<promise_type> release() noexcept {
    return std::exchange(handle_, {});
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}

  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

/// void specialization.
template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() noexcept {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    detail::FinalAwaiter<promise_type> final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
  };

  Task() noexcept = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const noexcept {
    return static_cast<bool>(handle_);
  }
  [[nodiscard]] bool done() const noexcept {
    return handle_ && handle_.done();
  }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;

      [[nodiscard]] bool await_ready() const noexcept {
        return !handle || handle.done();
      }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> awaiting) noexcept {
        handle.promise().continuation = awaiting;
        return handle;
      }
      void await_resume() {
        auto& p = handle.promise();
        if (p.exception) std::rethrow_exception(p.exception);
      }
    };
    return Awaiter{handle_};
  }

  std::coroutine_handle<promise_type> release() noexcept {
    return std::exchange(handle_, {});
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}

  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace hpres::sim
