#include "sim/simulator.h"

#include <exception>

namespace hpres::sim {
namespace {

/// Self-destroying wrapper coroutine used to detach a Task from its owner.
/// The wrapper's frame owns the Task (parameter passed by value, per CP.53);
/// when the inner task finishes, the wrapper runs off its end and
/// suspend_never at the final point frees both frames.
struct Detached {
  std::coroutine_handle<> handle;

  struct promise_type {
    Detached get_return_object() noexcept {
      return Detached{
          std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    [[noreturn]] void unhandled_exception() noexcept {
      // A detached simulation process has no awaiter to receive the
      // exception; escaping here is always a bug in the process itself.
      std::terminate();
    }
  };
};

Detached run_detached(Task<void> task) { co_await std::move(task); }

}  // namespace

void Simulator::spawn(Task<void> task) {
  if (!task.valid()) return;
  // Start from the event loop (never nested inside the spawner) so process
  // start order is FIFO-deterministic at the current simulated time.
  schedule(run_detached(std::move(task)).handle, 0);
}

void Simulator::spawn_at(SimTime at, Task<void> task) {
  if (!task.valid()) return;
  assert(at >= now_ && "spawn_at in the past");
  schedule(run_detached(std::move(task)).handle, at - now_);
}

SimTime Simulator::run() {
  while (!queue_.empty()) {
    const Scheduled item = queue_.top();
    queue_.pop();
    now_ = item.at;
    ++executed_;
    item.handle.resume();
  }
  return now_;
}

SimTime Simulator::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.top().at <= deadline) {
    const Scheduled item = queue_.top();
    queue_.pop();
    now_ = item.at;
    ++executed_;
    item.handle.resume();
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

SimTime Simulator::run_window(SimTime end) {
  while (!queue_.empty() && queue_.top().at < end) {
    const Scheduled item = queue_.top();
    queue_.pop();
    now_ = item.at;
    ++executed_;
    item.handle.resume();
  }
  if (now_ < end) now_ = end;
  return now_;
}

}  // namespace hpres::sim
