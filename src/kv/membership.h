// Cluster membership view shared by clients and servers.
//
// Failure model (DESIGN.md): this oracle is the *detected* state of the
// cluster, and it may lag reality. A crash flips the fabric immediately
// (in-flight messages are dropped, new sends to the dead HCA fail fast)
// but flips this view only after the FaultSchedule's configurable
// detection lag — during the lag, callers still target the dead server
// and resolve via RPC deadlines (kTimeout) or the fabric's fast-fail
// (kUnavailable). Once the failure is visible here, placement decisions
// route around it; consulting the oracle when the primary is down costs
// the paper's T_check server-selection overhead (Equation 4), charged by
// the caller. Controlled-failure experiments (fail_server between
// operations) flip both views atomically, reproducing the paper's setup
// where nodes are failed before the measurement.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/units.h"
#include "kv/protocol.h"

namespace hpres::kv {

class Membership {
 public:
  explicit Membership(std::size_t num_servers,
                      SimDur check_cost_ns = 1'500)
      : up_(num_servers, true), check_cost_ns_(check_cost_ns) {}

  [[nodiscard]] std::size_t size() const noexcept { return up_.size(); }

  void set_up(std::size_t server_index, bool up) {
    assert(server_index < up_.size());
    if (up_[server_index] != up) {
      up_[server_index] = up;
      ++epoch_;
    }
  }

  [[nodiscard]] bool up(std::size_t server_index) const {
    assert(server_index < up_.size());
    return up_[server_index];
  }

  [[nodiscard]] std::size_t alive() const noexcept {
    std::size_t n = 0;
    for (const bool u : up_) n += u ? 1 : 0;
    return n;
  }

  [[nodiscard]] bool all_up() const noexcept { return alive() == up_.size(); }

  /// T_check: time a client spends identifying a live server when its
  /// first choice is down.
  [[nodiscard]] SimDur check_cost_ns() const noexcept { return check_cost_ns_; }

  /// Bumped on every membership change (lets caches invalidate).
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

 private:
  std::vector<bool> up_;
  SimDur check_cost_ns_;
  std::uint64_t epoch_ = 0;
};

}  // namespace hpres::kv
