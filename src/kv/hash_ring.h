// Consistent-hash ring (ketama-style virtual nodes) plus the paper's chunk
// placement rule: consistent hashing locates the originally designated
// server, then the N-1 *following servers in the server list* hold the
// remaining fragments (Section IV-A).
#pragma once

#include <cstdint>
#include <map>
#include <string_view>
#include <vector>

#include "kv/protocol.h"

namespace hpres::kv {

class HashRing {
 public:
  /// `num_servers` servers indexed 0..num_servers-1, each projected onto
  /// the ring at `vnodes` points.
  explicit HashRing(std::size_t num_servers, std::size_t vnodes = 128,
                    std::uint64_t seed = 0x5eed);

  [[nodiscard]] std::size_t num_servers() const noexcept {
    return num_servers_;
  }

  /// Index (into the server list) of the key's designated primary server.
  [[nodiscard]] std::size_t primary_index(std::string_view key) const;

  /// Server-list index holding slot `slot` of this key: the primary for
  /// slot 0, then following servers in list order, wrapping.
  [[nodiscard]] std::size_t slot_index(std::string_view key,
                                       std::size_t slot) const {
    return (primary_index(key) + slot) % num_servers_;
  }

  /// 64-bit key hash (exposed for tests and workload tooling).
  [[nodiscard]] static std::uint64_t hash_key(std::string_view key) noexcept;

 private:
  std::size_t num_servers_;
  std::map<std::uint64_t, std::size_t> ring_;  // point -> server index
};

}  // namespace hpres::kv
