// Consistent-hash ring (ketama-style virtual nodes) plus the paper's chunk
// placement rule: consistent hashing locates the originally designated
// server, then the N-1 *following servers in the server list* hold the
// remaining fragments (Section IV-A).
//
// Elastic placement: the ring distinguishes *provisioned* servers (the
// fixed index space 0..num_servers-1, sized at construction) from the
// *active* set actually projected onto the ring. add_server / remove_server
// mutate the active set, bump the placement epoch, and rebuild the point
// map; moved_ranges() diffs two rings into the minimal set of hash ranges
// whose owner changed, which is what the migration pass walks.
#pragma once

#include <cstdint>
#include <algorithm>
#include <map>
#include <string_view>
#include <vector>

#include "kv/protocol.h"

namespace hpres::kv {

class HashRing {
 public:
  /// `num_servers` servers indexed 0..num_servers-1, each projected onto
  /// the ring at `vnodes` points. `initial_active` bounds the initially
  /// active prefix [0, initial_active); 0 means every provisioned server
  /// starts active (the classic fixed-membership ring).
  explicit HashRing(std::size_t num_servers, std::size_t vnodes = 128,
                    std::uint64_t seed = 0x5eed,
                    std::size_t initial_active = 0);

  /// Provisioned index space (stable across joins/leaves): fragment slot
  /// counts and per-server bookkeeping are sized against this.
  [[nodiscard]] std::size_t num_servers() const noexcept {
    return num_servers_;
  }

  /// Servers currently projected onto the ring.
  [[nodiscard]] std::size_t num_active() const noexcept {
    return active_.size();
  }

  /// Placement epoch: starts at 1, bumped by every add/remove. Requests
  /// stamped with epoch 0 are placement-unaware (the sentinel legacy
  /// clients use); servers only bounce epochs that are stale, never 0.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  [[nodiscard]] bool is_active(std::size_t server) const noexcept {
    return std::binary_search(active_.begin(), active_.end(), server);
  }

  /// Active server indices, ascending.
  [[nodiscard]] const std::vector<std::size_t>& active() const noexcept {
    return active_;
  }

  /// Projects `server` onto the ring and bumps the epoch. The server must
  /// be provisioned (< num_servers()) and not already active.
  void add_server(std::size_t server);

  /// Withdraws `server` from the ring and bumps the epoch. At least one
  /// active server must remain; callers enforce the stronger invariant
  /// that the codec's n never exceeds the active count.
  void remove_server(std::size_t server);

  /// Index (into the server list) of the key's designated primary server.
  [[nodiscard]] std::size_t primary_index(std::string_view key) const;

  /// Server-list index holding slot `slot` of this key: the primary for
  /// slot 0, then following *active* servers in list order, wrapping.
  /// With every provisioned server active this is the classic
  /// (primary + slot) % num_servers rule.
  [[nodiscard]] std::size_t slot_index(std::string_view key,
                                       std::size_t slot) const {
    const std::size_t primary = primary_index(key);
    const auto it =
        std::lower_bound(active_.begin(), active_.end(), primary);
    const auto pos = static_cast<std::size_t>(it - active_.begin());
    return active_[(pos + slot) % active_.size()];
  }

  /// 64-bit key hash (exposed for tests and workload tooling).
  [[nodiscard]] static std::uint64_t hash_key(std::string_view key) noexcept;

  /// One hash range whose primary owner differs between two rings. Ranges
  /// are half-open arcs (begin, end] on the 2^64 circle; begin >= end
  /// denotes the wrapping arc through 0.
  struct MovedRange {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    std::size_t from = 0;  ///< primary owner under the old ring
    std::size_t to = 0;    ///< primary owner under the new ring

    [[nodiscard]] bool covers(std::uint64_t h) const noexcept {
      if (begin < end) return h > begin && h <= end;
      return h > begin || h <= end;  // wrapping arc (or the full circle)
    }
  };

  /// Exact diff of primary ownership between two rings sharing a seed:
  /// every returned range changed owner, and any key hashing outside all
  /// ranges keeps its primary. The migration pass only touches keys whose
  /// hash a range covers.
  [[nodiscard]] static std::vector<MovedRange> moved_ranges(
      const HashRing& before, const HashRing& after);

  /// True when some range in `ranges` covers `h`.
  [[nodiscard]] static bool any_covers(const std::vector<MovedRange>& ranges,
                                       std::uint64_t h) noexcept {
    for (const MovedRange& r : ranges) {
      if (r.covers(h)) return true;
    }
    return false;
  }

  /// Fraction of the hash circle the ranges cover — the expected share of
  /// keys whose primary moves (≈ 1/num_active for a single join).
  [[nodiscard]] static double moved_fraction(
      const std::vector<MovedRange>& ranges) noexcept;

 private:
  void rebuild();
  [[nodiscard]] std::size_t owner_of(std::uint64_t h) const;

  std::size_t num_servers_;
  std::size_t vnodes_;
  std::uint64_t seed_;
  std::uint64_t epoch_ = 1;
  std::vector<std::size_t> active_;            // ascending server indices
  std::map<std::uint64_t, std::size_t> ring_;  // point -> server index
};

}  // namespace hpres::kv
