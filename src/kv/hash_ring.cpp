#include "kv/hash_ring.h"

#include <cassert>

#include "common/rng.h"

namespace hpres::kv {

HashRing::HashRing(std::size_t num_servers, std::size_t vnodes,
                   std::uint64_t seed, std::size_t initial_active)
    : num_servers_(num_servers), vnodes_(vnodes), seed_(seed) {
  assert(num_servers >= 1 && vnodes >= 1);
  assert(initial_active <= num_servers);
  const std::size_t active =
      initial_active == 0 ? num_servers : initial_active;
  active_.reserve(num_servers);
  for (std::size_t s = 0; s < active; ++s) active_.push_back(s);
  rebuild();
}

void HashRing::rebuild() {
  // Full rebuild over the active set, in the same (server ascending, vnode
  // ascending) insertion order as construction: point collisions resolve
  // identically, so a ring grown to the full provisioned set is
  // byte-for-byte the classic fixed-membership ring. Collisions are
  // harmless (last writer wins on one point of many).
  ring_.clear();
  for (const std::size_t s : active_) {
    for (std::size_t v = 0; v < vnodes_; ++v) {
      const std::uint64_t point =
          splitmix64(seed_ ^ splitmix64(s * 0x10001 + v));
      ring_[point] = s;
    }
  }
}

void HashRing::add_server(std::size_t server) {
  assert(server < num_servers_);
  const auto it = std::lower_bound(active_.begin(), active_.end(), server);
  assert(it == active_.end() || *it != server);  // must not already be active
  active_.insert(it, server);
  ++epoch_;
  rebuild();
}

void HashRing::remove_server(std::size_t server) {
  const auto it = std::lower_bound(active_.begin(), active_.end(), server);
  assert(it != active_.end() && *it == server);  // must be active
  assert(active_.size() > 1);
  active_.erase(it);
  ++epoch_;
  rebuild();
}

std::uint64_t HashRing::hash_key(std::string_view key) noexcept {
  // FNV-1a 64 finished with a splitmix avalanche: fast and well spread for
  // the short printable keys benchmarks generate.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : key) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return splitmix64(h);
}

std::size_t HashRing::owner_of(std::uint64_t h) const {
  auto it = ring_.lower_bound(h);
  if (it == ring_.end()) it = ring_.begin();  // wrap around the ring
  return it->second;
}

std::size_t HashRing::primary_index(std::string_view key) const {
  return owner_of(hash_key(key));
}

std::vector<HashRing::MovedRange> HashRing::moved_ranges(
    const HashRing& before, const HashRing& after) {
  // Ownership is piecewise constant between consecutive points of the
  // union of both rings' point sets: within an arc bounded by two adjacent
  // union points there is no point of either ring, so lower_bound resolves
  // every hash in the arc to the same owner as the arc's upper endpoint.
  std::vector<std::uint64_t> points;
  points.reserve(before.ring_.size() + after.ring_.size());
  for (const auto& [p, s] : before.ring_) points.push_back(p);
  for (const auto& [p, s] : after.ring_) points.push_back(p);
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());

  std::vector<MovedRange> out;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::uint64_t hi = points[i];
    const std::uint64_t lo = i == 0 ? points.back() : points[i - 1];
    const std::size_t from = before.owner_of(hi);
    const std::size_t to = after.owner_of(hi);
    if (from == to) continue;
    // Merge with the preceding arc when it ends where this one starts and
    // moves between the same pair of owners.
    if (!out.empty() && out.back().end == lo && out.back().from == from &&
        out.back().to == to) {
      out.back().end = hi;
    } else {
      out.push_back(MovedRange{lo, hi, from, to});
    }
  }
  return out;
}

double HashRing::moved_fraction(const std::vector<MovedRange>& ranges)
    noexcept {
  // Arc length of (begin, end] is end - begin in mod-2^64 arithmetic,
  // which unsigned wraparound computes directly for wrapping arcs too
  // (begin == end denotes the full circle; moved_ranges only produces it
  // in the degenerate one-point case).
  long double covered = 0.0L;
  for (const MovedRange& r : ranges) {
    const std::uint64_t len = r.end - r.begin;
    covered += len == 0 ? 0x1p64L : static_cast<long double>(len);
  }
  return static_cast<double>(covered / 0x1p64L);
}

}  // namespace hpres::kv
