#include "kv/hash_ring.h"

#include <cassert>

#include "common/rng.h"

namespace hpres::kv {

HashRing::HashRing(std::size_t num_servers, std::size_t vnodes,
                   std::uint64_t seed)
    : num_servers_(num_servers) {
  assert(num_servers >= 1 && vnodes >= 1);
  for (std::size_t s = 0; s < num_servers; ++s) {
    for (std::size_t v = 0; v < vnodes; ++v) {
      // Derive each virtual point from (seed, server, vnode); collisions
      // are harmless (last writer wins on one point of many).
      const std::uint64_t point =
          splitmix64(seed ^ splitmix64(s * 0x10001 + v));
      ring_[point] = s;
    }
  }
}

std::uint64_t HashRing::hash_key(std::string_view key) noexcept {
  // FNV-1a 64 finished with a splitmix avalanche: fast and well spread for
  // the short printable keys benchmarks generate.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : key) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return splitmix64(h);
}

std::size_t HashRing::primary_index(std::string_view key) const {
  const std::uint64_t h = hash_key(key);
  auto it = ring_.lower_bound(h);
  if (it == ring_.end()) it = ring_.begin();  // wrap around the ring
  return it->second;
}

}  // namespace hpres::kv
