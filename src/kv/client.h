// KV client node: the RDMA-Libmemcached analogue. Owns a single-core CPU
// resource on which request-issue work serializes (the "Request" phase of
// the paper's Figure 9 breakdown) and which the client-side erasure engines
// borrow for encode/decode work.
#pragma once

#include "kv/placement.h"
#include "kv/rpc.h"
#include "obs/metrics.h"
#include "sim/sync.h"

namespace hpres::kv {

struct ClientParams {
  SimDur issue_cpu_ns = 400;      ///< posting one non-blocking request
  double issue_ns_per_byte = 0.0; ///< extra per-payload-byte issue cost
};

struct ClientStats {
  std::uint64_t requests = 0;
  std::uint64_t responses = 0;
  std::uint64_t unavailable = 0;
  std::uint64_t timeouts = 0;  ///< calls resolved kTimeout (retry-exhausted)

  /// Registers every field into `reg` under component "client".
  void register_with(obs::MetricsRegistry& reg, std::string node,
                     std::string op = {}) const {
    const obs::MetricLabels labels{"client", std::move(node), std::move(op)};
    reg.bind_counter("client.requests", labels, &requests);
    reg.bind_counter("client.responses", labels, &responses);
    reg.bind_counter("client.unavailable", labels, &unavailable);
    reg.bind_counter("client.timeouts", labels, &timeouts);
  }
};

class Client final : public RpcNode {
 public:
  Client(sim::Simulator& sim, KvFabric& fabric, NodeId id,
         ClientParams params = {})
      : RpcNode(sim, fabric, id), params_(params), cpu_(sim, 1) {}

  /// Issues a request asynchronously: the issue cost serializes on this
  /// client's CPU, then the request enters the fabric. The future resolves
  /// with the server's response (memcached_iset/iget semantics).
  sim::Future<Response> call_async(NodeId dst, Request req);

  /// Blocking convenience: issue and await (memcached_set/get semantics).
  sim::Task<Response> invoke(NodeId dst, Request req);

  /// The client CPU; erasure engines charge encode/decode time here.
  [[nodiscard]] sim::WorkerPool& cpu() noexcept { return cpu_; }
  [[nodiscard]] const ClientParams& params() const noexcept { return params_; }
  [[nodiscard]] const ClientStats& stats() const noexcept { return stats_; }

  /// Attaches the cluster's placement view: every request issued from now
  /// on is stamped with the epoch its owners were resolved under (unless
  /// the caller stamped one itself). Null detaches (legacy behavior).
  void set_placement_view(const PlacementView* view) noexcept {
    placement_ = view;
  }

 protected:
  void on_request(KvEnvelope env) override {
    // Clients never serve requests; stray traffic is dropped.
    (void)env;
  }

 private:
  static sim::Task<void> issue_coro(Client* self, NodeId dst, Request req,
                                    sim::Promise<Response> out);

  ClientParams params_;
  sim::WorkerPool cpu_;
  ClientStats stats_;
  const PlacementView* placement_ = nullptr;
};

}  // namespace hpres::kv
