#include "kv/store.h"

#include <cassert>

namespace hpres::kv {

Status StorageEngine::set(const Key& key, SharedBytes value,
                          std::optional<ChunkInfo> chunk) {
  ++stats_.set_ops;
  const std::size_t charge = charge_for(key, value, chunk);
  if (charge > capacity_) {
    ++stats_.rejected_sets;
    return Status{StatusCode::kOutOfMemory, "item exceeds server capacity"};
  }

  if (const auto it = map_.find(key); it != map_.end()) {
    used_ -= it->second.charged_bytes;
    lru_.erase(it->second.lru_it);
    map_.erase(it);
  }
  // Drop any stale SSD copy so a later promotion cannot resurrect it.
  if (const auto sit = ssd_map_.find(key); sit != ssd_map_.end()) {
    ssd_used_ -= sit->second.charged_bytes;
    ssd_lru_.erase(sit->second.lru_it);
    ssd_map_.erase(sit);
  }
  while (used_ + charge > capacity_) evict_one();

  lru_.push_front(key);
  map_.emplace(key, Entry{std::move(value), chunk, charge, lru_.begin()});
  used_ += charge;
  return Status::Ok();
}

Result<StorageEngine::GetResult> StorageEngine::get(const Key& key) {
  ++stats_.get_ops;
  const auto it = map_.find(key);
  if (it == map_.end()) {
    // Memory miss: consult the SSD tier, promoting on a hit.
    const auto sit = ssd_map_.find(key);
    if (sit == ssd_map_.end()) {
      ++stats_.misses;
      return Status{StatusCode::kNotFound};
    }
    ++stats_.hits;
    ++stats_.ssd_hits;
    ++stats_.promotions;
    Entry entry = std::move(sit->second);
    ssd_used_ -= entry.charged_bytes;
    ssd_lru_.erase(entry.lru_it);
    ssd_map_.erase(sit);
    GetResult out{entry.value, entry.chunk, /*from_ssd=*/true};
    // Re-admit to memory (may demote colder items in turn).
    while (used_ + entry.charged_bytes > capacity_ && !lru_.empty()) {
      evict_one();
    }
    lru_.push_front(key);
    entry.lru_it = lru_.begin();
    used_ += entry.charged_bytes;
    map_.emplace(key, std::move(entry));
    return out;
  }
  ++stats_.hits;
  // Refresh LRU position.
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  it->second.lru_it = lru_.begin();
  return GetResult{it->second.value, it->second.chunk, false};
}

bool StorageEngine::erase(const Key& key) {
  if (const auto it = map_.find(key); it != map_.end()) {
    used_ -= it->second.charged_bytes;
    lru_.erase(it->second.lru_it);
    map_.erase(it);
    return true;
  }
  if (const auto sit = ssd_map_.find(key); sit != ssd_map_.end()) {
    ssd_used_ -= sit->second.charged_bytes;
    ssd_lru_.erase(sit->second.lru_it);
    ssd_map_.erase(sit);
    return true;
  }
  return false;
}

void StorageEngine::evict_one() {
  assert(!lru_.empty() && "capacity accounting underflow");
  const Key victim = lru_.back();
  const auto it = map_.find(victim);
  assert(it != map_.end());
  ++stats_.evictions;
  Entry entry = std::move(it->second);
  used_ -= entry.charged_bytes;
  lru_.pop_back();
  map_.erase(it);
  if (ssd_enabled() && entry.charged_bytes <= ssd_capacity_) {
    demote_to_ssd(victim, std::move(entry));
  } else {
    stats_.evicted_bytes += entry.value ? entry.value->size() : 0;
  }
}

void StorageEngine::demote_to_ssd(const Key& key, Entry entry) {
  while (ssd_used_ + entry.charged_bytes > ssd_capacity_) {
    evict_one_from_ssd();
  }
  // Replace any stale SSD copy of the same key.
  if (const auto sit = ssd_map_.find(key); sit != ssd_map_.end()) {
    ssd_used_ -= sit->second.charged_bytes;
    ssd_lru_.erase(sit->second.lru_it);
    ssd_map_.erase(sit);
  }
  ++stats_.demotions;
  stats_.demoted_bytes += entry.value ? entry.value->size() : 0;
  ssd_lru_.push_front(key);
  entry.lru_it = ssd_lru_.begin();
  ssd_used_ += entry.charged_bytes;
  ssd_map_.emplace(key, std::move(entry));
}

void StorageEngine::evict_one_from_ssd() {
  assert(!ssd_lru_.empty() && "SSD accounting underflow");
  const Key victim = ssd_lru_.back();
  const auto it = ssd_map_.find(victim);
  assert(it != ssd_map_.end());
  ++stats_.evictions;
  stats_.evicted_bytes += it->second.value ? it->second.value->size() : 0;
  ssd_used_ -= it->second.charged_bytes;
  ssd_lru_.pop_back();
  ssd_map_.erase(it);
}

}  // namespace hpres::kv
