#include "kv/server.h"

#include <algorithm>
#include <cassert>

namespace hpres::kv {

namespace {
constexpr SimDur kPeerIssueNs = 300;  // posting one chunk request to a peer
}  // namespace

Server::Server(sim::Simulator& sim, KvFabric& fabric, NodeId id,
               ServerParams params)
    : RpcNode(sim, fabric, id),
      params_(params),
      store_(params.memory_bytes),
      workers_(sim, params.workers) {
  if (params.ssd_bytes > 0) {
    store_.enable_ssd(SsdConfig{params.ssd_bytes});
  }
}

Server::HandlerTrace::HandlerTrace(Server& server, const Request& req)
    : server_(&server) {
  obs::Tracer* tr = server.live_tracer();
  if (tr == nullptr || !req.trace.valid()) return;
  tr_ = tr;
  lane_ = server.handler_lanes_.acquire();
  begin_ = server.sim().now();
  const std::uint64_t tid = static_cast<std::uint64_t>(server.id()) *
                                obs::Tracer::kLanesPerNode +
                            lane_;
  ctx_ = req.trace.child(tid);
}

Server::HandlerTrace::~HandlerTrace() {
  if (tr_ == nullptr) return;
  mark_done();
  server_->handler_lanes_.release(lane_);
}

void Server::HandlerTrace::mark_done() {
  if (tr_ == nullptr || done_) return;
  done_ = true;
  tr_->complete(server_->obs_pid(), ctx_.span_id, "server/handle", "server",
                begin_, server_->sim().now() - begin_, ctx_.trace_id);
}

void Server::HandlerTrace::queue_span(SimTime enqueued_ns, SimDur cost_ns) {
  if (tr_ == nullptr) return;
  const SimDur waited = server_->sim().now() - enqueued_ns - cost_ns;
  if (waited <= 0) return;
  tr_->async_span(server_->obs_pid(), tr_->new_async_id(), "server/queue",
                  "server", enqueued_ns, waited, ctx_.trace_id);
}

void Server::HandlerTrace::compute_span(std::string_view name,
                                        SimTime begin_ns) {
  if (tr_ == nullptr) return;
  tr_->complete(server_->obs_pid(), ctx_.span_id, name, "server", begin_ns,
                server_->sim().now() - begin_ns, ctx_.trace_id);
}

void Server::fail() {
  failed_ = true;
  fabric().set_node_up(id(), false);
}

void Server::recover() {
  failed_ = false;
  fabric().set_node_up(id(), true);
}

namespace {
constexpr bool is_write_verb(Verb v) noexcept {
  return v == Verb::kSet || v == Verb::kSetEncode || v == Verb::kDelete ||
         v == Verb::kSetStripeIndex;
}
}  // namespace

void Server::on_request(KvEnvelope env) {
  if (failed_) return;  // dead servers answer nothing
  const auto& req = std::get<Request>(env.body);
  if (req.verb == Verb::kPlacementEpoch) {
    // Control plane: install the new epoch (monotone — a late-arriving
    // older install never rolls the server back). Cheap header-only work,
    // answered inline without a worker slot.
    placement_epoch_ = std::max(placement_epoch_, req.epoch);
    Response resp;
    resp.rpc_id = req.rpc_id;
    resp.code = StatusCode::kOk;
    resp.epoch = placement_epoch_;
    reply(req.reply_to, std::move(resp));
    return;
  }
  if (req.epoch != 0 && req.epoch < placement_epoch_ &&
      is_write_verb(req.verb)) {
    // Stale-epoch write: the sender resolved owners under a ring that was
    // since replaced. Bounce before any stateful work — the retry under
    // the new epoch re-places every fragment, so accepting nothing here is
    // what keeps old-ring residue bounded. Reads are never bounced: during
    // migration both placements may legitimately hold the data.
    ++wrong_epoch_bounces_;
    Response resp;
    resp.rpc_id = req.rpc_id;
    resp.code = StatusCode::kWrongEpoch;
    resp.epoch = placement_epoch_;
    reply(req.reply_to, std::move(resp));
    return;
  }
  switch (req.verb) {
    case Verb::kSet:
    case Verb::kGet:
    case Verb::kDelete:
    case Verb::kScan:
    case Verb::kSetStripeIndex:
      sim().spawn(handle_plain(this, std::move(env)));
      break;
    case Verb::kSetEncode:
      assert(ec_ && "kSetEncode requires enable_ec()");
      sim().spawn(handle_set_encode(this, std::move(env)));
      break;
    case Verb::kGetDecode:
      assert(ec_ && "kGetDecode requires enable_ec()");
      sim().spawn(handle_get_decode(this, std::move(env)));
      break;
    case Verb::kPlacementEpoch:
      break;  // answered above
  }
}

sim::Task<void> Server::handle_plain(Server* self, KvEnvelope env) {
  auto& req = std::get<Request>(env.body);
  HandlerTrace ht(*self, req);
  std::size_t touched =
      req.value ? req.value->size()
                : (req.verb == Verb::kGet ? 0 : req.key.size());
  if (req.verb == Verb::kSetStripeIndex) {
    touched = 0;  // ingest cost scales with the locator batch, not the key
    for (const auto& e : req.stripe_index) touched += e.key.size() + 12;
  }
  const SimTime enqueued = self->sim().now();
  const SimDur first_cost = self->touch_cost(touched);
  co_await self->workers_.execute(first_cost);
  ht.queue_span(enqueued, first_cost);

  Response resp;
  resp.rpc_id = req.rpc_id;
  resp.trace = ht.ctx();
  switch (req.verb) {
    case Verb::kSet: {
      if (req.if_absent && self->store_.get(req.key).ok()) {
        // Migration copy racing a fresher write under the new epoch: the
        // resident value wins, and the copy acks as a no-op.
        resp.code = StatusCode::kOk;
        break;
      }
      const std::uint64_t demoted_before = self->store_.stats().demoted_bytes;
      resp.code = self->store_.set(req.key, req.value, req.chunk).code();
      const std::uint64_t demoted =
          self->store_.stats().demoted_bytes - demoted_before;
      if (demoted > 0) {
        // Eviction pressure spilled colder items to the SSD tier.
        co_await self->workers_.execute(
            self->params_.ssd_access_ns +
            static_cast<SimDur>(self->params_.ssd_write_ns_per_byte *
                                static_cast<double>(demoted)));
      }
      break;
    }
    case Verb::kGet: {
      if (req.stripe_lookup) {
        // Locator directory probe: metadata only, never touches the LRU
        // store (locators must survive value-eviction pressure).
        auto it = self->stripe_dir_.find(req.key);
        if (it != self->stripe_dir_.end()) {
          resp.code = StatusCode::kOk;
          resp.stripe = it->second;
        } else {
          resp.code = StatusCode::kNotFound;
        }
        co_await self->workers_.execute(self->read_cost(0));
        break;
      }
      auto got = self->store_.get(req.key);
      if (got.ok()) {
        resp.code = StatusCode::kOk;
        resp.chunk = got->chunk;
        if (got->from_ssd) {
          // Promotion: the value came off the device, not the slab.
          co_await self->workers_.execute(
              self->params_.ssd_access_ns +
              static_cast<SimDur>(
                  self->params_.ssd_read_ns_per_byte *
                  static_cast<double>(got->value ? got->value->size() : 0)));
        }
        if (req.head_only) {
          // Presence probe: metadata only, no payload on the wire.
          co_await self->workers_.execute(self->read_cost(0));
        } else {
          resp.value = got->value;
          // Read path: response DMAs out of the registered slab (cheap).
          co_await self->workers_.execute(self->read_cost(
              resp.value ? resp.value->size() : 0));
        }
      } else {
        resp.code = got.status().code();
      }
      break;
    }
    case Verb::kDelete: {
      if (req.stripe_lookup) {
        // Unlink the key's packed-stripe locator (overwrite-by-large-value
        // or delete); the stripe bytes themselves become garbage in place.
        auto it = self->stripe_dir_.find(req.key);
        if (it != self->stripe_dir_.end()) {
          self->stripe_dir_bytes_ -=
              it->first.size() + it->second.stripe.size() + 12;
          self->stripe_dir_.erase(it);
          resp.code = StatusCode::kOk;
        } else {
          resp.code = StatusCode::kNotFound;
        }
        break;
      }
      resp.code = self->store_.erase(req.key) ? StatusCode::kOk
                                              : StatusCode::kNotFound;
      break;
    }
    case Verb::kScan: {
      if (req.stripe_lookup) {
        // Locator-directory walk: the keys whose packed-stripe locators
        // this server hosts (migration discovery for the placement plane).
        std::vector<Key> keys;
        keys.reserve(self->stripe_dir_.size());
        for (const auto& [key, loc] : self->stripe_dir_) keys.push_back(key);
        co_await self->workers_.execute(
            static_cast<SimDur>(200 * keys.size()));
        resp.code = StatusCode::kOk;
        resp.keys = std::move(keys);
        break;
      }
      // Distinct base keys of every fragment held here; repair discovery.
      std::vector<Key> bases;
      for (const Key& stored : self->store_.keys()) {
        if (auto parsed = parse_chunk_key(stored); parsed) {
          bases.push_back(std::move(parsed->base));
        }
      }
      std::sort(bases.begin(), bases.end());
      bases.erase(std::unique(bases.begin(), bases.end()), bases.end());
      co_await self->workers_.execute(static_cast<SimDur>(
          200 * bases.size()));  // index walk, ~200ns per item
      resp.code = StatusCode::kOk;
      resp.keys = std::move(bases);
      break;
    }
    case Verb::kSetStripeIndex: {
      // Batched locator install for one packed stripe: every record's user
      // key maps to its sub-slot location inside the stripe named by
      // req.key. Newer installs replace older ones (overwrite wins).
      const std::uint32_t stripe_bytes = static_cast<std::uint32_t>(
          req.chunk ? req.chunk->original_size : 0);
      for (const auto& e : req.stripe_index) {
        auto it = self->stripe_dir_.find(e.key);
        if (it != self->stripe_dir_.end()) {
          // Migration re-installs must not clobber a locator a concurrent
          // overwrite already refreshed (see Request::if_absent).
          if (req.if_absent) continue;
          self->stripe_dir_bytes_ -=
              it->first.size() + it->second.stripe.size() + 12;
        }
        self->stripe_dir_[e.key] =
            StripeLoc{req.key, e.offset, e.len, stripe_bytes};
        self->stripe_dir_bytes_ += e.key.size() + req.key.size() + 12;
      }
      resp.code = StatusCode::kOk;
      break;
    }
    default:
      resp.code = StatusCode::kInvalidArgument;
      break;
  }
  self->reply(req.reply_to, std::move(resp));
}

sim::Task<void> Server::handle_set_encode(Server* self, KvEnvelope env) {
  auto& req = std::get<Request>(env.body);
  HandlerTrace ht(*self, req);
  const ServerEcContext& ec = *self->ec_;
  const std::size_t value_size = req.value ? req.value->size() : 0;
  const std::size_t k = ec.codec->k();
  const std::size_t n = ec.codec->n();

  // Ingest the full value and stage it locally under the plain key, then
  // acknowledge: the client's one write request completes after a single
  // D-byte transfer (the Era-SE-* advantage, Section VI-B). Encoding and
  // fragment distribution continue below on the server ARPE, overlapped
  // with new requests by the parallel workers. The staged copy guarantees
  // read-after-write: it is only dropped once every fragment is acked, and
  // readers that race the distribution fall back to the stager.
  const SimTime enqueued = self->sim().now();
  const SimDur first_cost = self->touch_cost(value_size);
  co_await self->workers_.execute(first_cost);
  ht.queue_span(enqueued, first_cost);
  const Status staged = self->store_.set(req.key, req.value);
  {
    Response resp;
    resp.rpc_id = req.rpc_id;
    resp.code = staged.code();
    resp.trace = ht.ctx();
    self->reply(req.reply_to, std::move(resp));
  }
  // The client's op completes at the ack above; the encode + distribution
  // below continue in the background (off the op's critical path, which is
  // exactly what the trace should show).
  ht.mark_done();
  if (!staged.ok()) co_return;

  const SimTime encode_begin = self->sim().now();
  co_await self->workers_.execute(self->slow(ec.cost.encode_ns(value_size)));
  ht.compute_span("server/encode", encode_begin);

  const ec::ChunkLayout layout =
      ec::make_layout(value_size, k, ec.codec->alignment());
  std::vector<SharedBytes> fragments;
  fragments.reserve(n);
  if (ec.materialize && req.value) {
    std::vector<Bytes> data = ec::split_value(*req.value, layout);
    std::vector<ConstByteSpan> data_spans(data.begin(), data.end());
    std::vector<Bytes> parity(ec.codec->m(), Bytes(layout.fragment_size));
    std::vector<ByteSpan> parity_spans(parity.begin(), parity.end());
    ec.codec->encode(data_spans, parity_spans);
    for (auto& f : data) fragments.push_back(make_shared_bytes(std::move(f)));
    for (auto& p : parity) fragments.push_back(make_shared_bytes(std::move(p)));
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      fragments.push_back(zero_bytes(layout.fragment_size));
    }
  }

  StatusCode worst = StatusCode::kOk;
  std::vector<sim::Future<Response>> pending;
  pending.reserve(n);
  for (std::size_t slot = 0; slot < n; ++slot) {
    const std::size_t owner = ec.ring->slot_index(req.key, slot);
    ChunkInfo info{value_size, static_cast<std::uint32_t>(slot),
                   static_cast<std::uint16_t>(k),
                   static_cast<std::uint16_t>(ec.codec->m())};
    const Key ckey = chunk_key(req.key, slot);
    if (owner == ec.my_index) {
      const Status s = self->store_.set(ckey, fragments[slot], info);
      if (!s.ok()) worst = s.code();
      continue;
    }
    co_await self->workers_.execute(kPeerIssueNs);
    Request peer;
    peer.verb = Verb::kSet;
    peer.key = ckey;
    peer.value = fragments[slot];
    peer.chunk = info;
    peer.trace = ht.ctx();
    pending.push_back(
        self->guarded_future((*ec.server_nodes)[owner], std::move(peer)));
  }
  for (auto& f : pending) {
    const Response r = co_await f.wait();
    if (r.code != StatusCode::kOk) worst = r.code;
  }
  if (worst != StatusCode::kOk) ++self->background_set_failures_;
  // All fragments placed: the staged full copy is no longer needed.
  self->store_.erase(req.key);
}

sim::Task<void> Server::handle_get_decode(Server* self, KvEnvelope env) {
  auto& req = std::get<Request>(env.body);
  HandlerTrace ht(*self, req);
  const ServerEcContext& ec = *self->ec_;
  const std::size_t k = ec.codec->k();
  const std::size_t n = ec.codec->n();

  const SimTime enqueued = self->sim().now();
  const SimDur first_cost = self->touch_cost(0);
  co_await self->workers_.execute(first_cost);
  ht.queue_span(enqueued, first_cost);

  // Staged full value (an in-progress or raced server-side Set): serve it
  // directly.
  if (auto staged = self->store_.get(req.key); staged.ok()) {
    co_await self->workers_.execute(self->read_cost(
        staged->value ? staged->value->size() : 0));
    Response resp;
    resp.rpc_id = req.rpc_id;
    resp.code = StatusCode::kOk;
    resp.value = staged->value;
    resp.trace = ht.ctx();
    self->reply(req.reply_to, std::move(resp));
    co_return;
  }

  // Pick the fragments to aggregate, codec-aware (data slots first; LRC
  // skips linearly dependent survivor rows).
  std::vector<bool> available(n, false);
  for (std::size_t slot = 0; slot < n; ++slot) {
    if (ec.membership->up(ec.ring->slot_index(req.key, slot))) {
      available[slot] = true;
    }
  }
  Response resp;
  resp.rpc_id = req.rpc_id;
  resp.trace = ht.ctx();
  const Result<std::vector<std::size_t>> selected =
      ec.codec->select_read_set(available);
  if (!selected.ok()) {
    resp.code = selected.status().code();
    self->reply(req.reply_to, std::move(resp));
    co_return;
  }
  const std::vector<std::size_t>& chosen = *selected;

  // Fetch the chosen fragments: local slot from the store, remote slots
  // from peers, all in flight concurrently.
  struct Fetch {
    std::size_t slot = 0;
    sim::Future<Response> future;  // invalid for local fetches
    SharedBytes value;
    std::optional<ChunkInfo> info;
    bool ok = false;
  };
  std::vector<Fetch> fetches(chosen.size());
  for (std::size_t i = 0; i < chosen.size(); ++i) {
    const std::size_t slot = chosen[i];
    fetches[i].slot = slot;
    const std::size_t owner = ec.ring->slot_index(req.key, slot);
    const Key ckey = chunk_key(req.key, slot);
    if (owner == ec.my_index) {
      auto got = self->store_.get(ckey);
      if (got.ok()) {
        co_await self->workers_.execute(
            self->read_cost(got->value ? got->value->size() : 0));
        fetches[i].value = got->value;
        fetches[i].info = got->chunk;
        fetches[i].ok = true;
      }
      continue;
    }
    co_await self->workers_.execute(kPeerIssueNs);
    Request peer;
    peer.verb = Verb::kGet;
    peer.key = ckey;
    peer.trace = ht.ctx();
    fetches[i].future =
        self->guarded_future((*ec.server_nodes)[owner], std::move(peer));
  }
  for (auto& f : fetches) {
    if (!f.future.valid()) continue;
    Response r = co_await f.future.wait();
    if (r.code == StatusCode::kOk) {
      f.value = std::move(r.value);
      f.info = r.chunk;
      f.ok = true;
    }
  }

  std::optional<ChunkInfo> meta;
  std::size_t missing_data = k;  // data slots we could not fetch directly
  for (const auto& f : fetches) {
    if (!f.ok) continue;
    if (f.info) meta = f.info;
    if (f.slot < k) --missing_data;
  }
  const std::size_t fetched =
      static_cast<std::size_t>(std::count_if(fetches.begin(), fetches.end(),
                                             [](const Fetch& f) { return f.ok; }));
  if (fetched < k || !meta) {
    resp.code = StatusCode::kNotFound;
    self->reply(req.reply_to, std::move(resp));
    co_return;
  }

  const std::size_t value_size = meta->original_size;
  if (missing_data > 0) {
    const SimTime decode_begin = self->sim().now();
    co_await self->workers_.execute(self->slow(ec.cost.decode_ns(
        value_size, static_cast<unsigned>(missing_data))));
    ht.compute_span("server/decode", decode_begin);
  }

  const ec::ChunkLayout layout =
      ec::make_layout(value_size, k, ec.codec->alignment());
  Bytes value(value_size);
  if (ec.materialize) {
    // Rebuild missing data fragments with the real codec, then join.
    std::vector<Bytes> storage(n, Bytes(layout.fragment_size));
    std::vector<bool> present(n, false);
    for (const auto& f : fetches) {
      if (!f.ok || !f.value) continue;
      storage[f.slot] = *f.value;
      present[f.slot] = true;
    }
    std::vector<ByteSpan> spans(storage.begin(), storage.end());
    if (missing_data > 0) {
      const Status s = ec.codec->reconstruct_data(spans, present);
      if (!s.ok()) {
        resp.code = s.code();
        self->reply(req.reply_to, std::move(resp));
        co_return;
      }
    }
    std::vector<ConstByteSpan> data(
        storage.begin(), storage.begin() + static_cast<std::ptrdiff_t>(k));
    Result<Bytes> joined = ec::join_fragments(data, layout);
    if (!joined.ok()) {
      resp.code = joined.status().code();
      self->reply(req.reply_to, std::move(resp));
      co_return;
    }
    value = std::move(*joined);
  }

  resp.code = StatusCode::kOk;
  resp.value = make_shared_bytes(std::move(value));
  self->reply(req.reply_to, std::move(resp));
}

}  // namespace hpres::kv
