#include "kv/rpc.h"

#include <optional>
#include <utility>

namespace hpres::kv {

sim::Future<Response> RpcNode::call(NodeId dst, Request req) {
  sim::Promise<Response> promise(*sim_);
  sim::Future<Response> future = promise.get_future();
  if (!fabric_->node_up(dst)) {
    last_call_id_ = 0;
    Response failed;
    failed.rpc_id = req.rpc_id;
    failed.code = StatusCode::kUnavailable;
    promise.set_value(std::move(failed));
    return future;
  }
  req.rpc_id = next_rpc_++;
  req.reply_to = id_;
  last_call_id_ = req.rpc_id;
  pending_.emplace(req.rpc_id,
                   PendingCall{std::move(promise), dst, sim_->now()});
  const std::size_t bytes = payload_bytes(req);
  const obs::TraceContext trace = req.trace;
  fabric_->send(id_, dst, WireBody{std::move(req)}, bytes, trace);
  return future;
}

void RpcNode::cancel_resolve(std::uint64_t rpc_id) {
  const auto it = pending_.find(rpc_id);
  if (it == pending_.end()) return;
  sim::Promise<Response> promise = std::move(it->second.promise);
  pending_.erase(it);
  Response cancelled;
  cancelled.rpc_id = rpc_id;
  cancelled.code = StatusCode::kCancelled;
  promise.set_value(std::move(cancelled));
}

sim::Task<Response> RpcNode::call_guarded(NodeId dst, Request req) {
  if (policy_.timeout_ns <= 0) {
    const sim::Future<Response> f = call(dst, std::move(req));
    co_return co_await f.wait();
  }
  for (std::uint32_t attempt = 0;; ++attempt) {
    const sim::Future<Response> f = call(dst, req);  // keep req for retries
    const std::uint64_t rpc_id = last_call_id_;
    std::optional<Response> resp = co_await f.wait_for(policy_.timeout_ns);
    if (resp) co_return std::move(*resp);

    ++rpc_stats_.timeouts;
    cancel(rpc_id);  // a late response is dropped as stale by dispatch
    if (health_ != nullptr) {
      health_->on_timeout(static_cast<std::size_t>(dst));
    }
    if (flight_ != nullptr) {
      flight_->record(sim_->now(), static_cast<std::size_t>(dst),
                      obs::FlightEventType::kRpcTimeout,
                      static_cast<std::uint64_t>(policy_.timeout_ns),
                      static_cast<std::uint32_t>(id_));
    }
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->complete(trace_pid_, obs::Tracer::kNicTidBase + id_,
                        "rpc/timeout", "rpc", sim_->now() - policy_.timeout_ns,
                        policy_.timeout_ns, req.trace.trace_id);
    }
    if (attempt >= policy_.max_retries) {
      ++rpc_stats_.expired_calls;
      Response expired;
      expired.rpc_id = rpc_id;
      expired.code = StatusCode::kTimeout;
      co_return expired;
    }
    ++rpc_stats_.retries;
    if (health_ != nullptr) {
      health_->on_retry(static_cast<std::size_t>(dst));
    }
    if (flight_ != nullptr) {
      flight_->record(sim_->now(), static_cast<std::size_t>(dst),
                      obs::FlightEventType::kRpcRetry, attempt,
                      static_cast<std::uint32_t>(id_));
    }
    if (policy_.backoff_ns > 0) {
      co_await sim_->delay(policy_.backoff_ns << attempt);
    }
  }
}

sim::Future<Response> RpcNode::guarded_future(NodeId dst, Request req) {
  if (policy_.timeout_ns <= 0) return call(dst, std::move(req));
  sim::Promise<Response> promise(*sim_);
  sim::Future<Response> future = promise.get_future();
  sim_->spawn(guarded_coro(this, dst, std::move(req), std::move(promise)));
  return future;
}

sim::Task<void> RpcNode::guarded_coro(RpcNode* self, NodeId dst, Request req,
                                      sim::Promise<Response> out) {
  out.set_value(co_await self->call_guarded(dst, std::move(req)));
}

sim::Task<void> RpcNode::dispatch_loop(RpcNode* self) {
  auto& inbox = self->fabric_->inbox(self->id_);
  for (;;) {
    std::optional<KvEnvelope> env = co_await inbox.recv();
    if (!env) break;  // inbox closed: node shut down
    if (std::holds_alternative<Request>(env->body)) {
      self->on_request(std::move(*env));
    } else {
      auto& resp = std::get<Response>(env->body);
      const auto it = self->pending_.find(resp.rpc_id);
      if (it == self->pending_.end()) continue;  // stale/duplicate response
      sim::Promise<Response> promise = std::move(it->second.promise);
      if (self->health_ != nullptr) {
        self->health_->on_response(static_cast<std::size_t>(it->second.dst),
                                   self->sim_->now() - it->second.sent_at);
      }
      self->pending_.erase(it);
      promise.set_value(std::move(resp));
    }
  }
}

}  // namespace hpres::kv
