#include "kv/rpc.h"

namespace hpres::kv {

sim::Future<Response> RpcNode::call(NodeId dst, Request req) {
  sim::Promise<Response> promise(*sim_);
  sim::Future<Response> future = promise.get_future();
  if (!fabric_->node_up(dst)) {
    Response failed;
    failed.rpc_id = req.rpc_id;
    failed.code = StatusCode::kUnavailable;
    promise.set_value(std::move(failed));
    return future;
  }
  req.rpc_id = next_rpc_++;
  req.reply_to = id_;
  pending_.emplace(req.rpc_id, std::move(promise));
  const std::size_t bytes = payload_bytes(req);
  fabric_->send(id_, dst, WireBody{std::move(req)}, bytes);
  return future;
}

sim::Task<void> RpcNode::dispatch_loop(RpcNode* self) {
  auto& inbox = self->fabric_->inbox(self->id_);
  for (;;) {
    std::optional<KvEnvelope> env = co_await inbox.recv();
    if (!env) break;  // inbox closed: node shut down
    if (std::holds_alternative<Request>(env->body)) {
      self->on_request(std::move(*env));
    } else {
      auto& resp = std::get<Response>(env->body);
      const auto it = self->pending_.find(resp.rpc_id);
      if (it == self->pending_.end()) continue;  // stale/duplicate response
      sim::Promise<Response> promise = std::move(it->second);
      self->pending_.erase(it);
      promise.set_value(std::move(resp));
    }
  }
}

}  // namespace hpres::kv
