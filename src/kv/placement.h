// Client-visible snapshot of the versioned placement plane.
//
// A single authority (cluster::PlacementManager) owns one PlacementView per
// cluster and hands out const pointers; it mutates the view only at
// quiesce-safe points (inline in oracle mode, from a runtime quiesce hook
// when sharded), so readers on any shard always observe a consistent
// {epoch, ring} pair without locks.
#pragma once

#include <cstdint>

namespace hpres::kv {

class HashRing;

struct PlacementView {
  /// Current placement epoch — HashRing::epoch() of the live ring. Clients
  /// stamp it onto outgoing requests; servers bounce writes carrying an
  /// older (non-zero) one with kWrongEpoch.
  std::uint64_t epoch = 0;
  /// A migration pass is in flight: fragments may still sit at their
  /// pre-cutover positions, so reads that miss under the new ring fall
  /// back to `prev`, and deletes dual-issue under both rings.
  bool in_transition = false;
  /// The pre-cutover ring while in_transition (stable address owned by
  /// the placement manager), nullptr otherwise.
  const HashRing* prev = nullptr;
};

}  // namespace hpres::kv
