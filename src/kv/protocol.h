// Wire protocol of the simulated Memcached-like KV store.
//
// Beyond plain kSet/kGet/kDelete, two verbs implement the paper's
// server-side offload designs: kSetEncode asks the receiving server to
// erasure-code the value and distribute the fragments itself (Era-SE-*),
// and kGetDecode asks it to aggregate fragments from its peers and return
// the reassembled value (Era-*-SD).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "net/fabric.h"

namespace hpres::kv {

using net::NodeId;
using Key = std::string;

enum class Verb : std::uint8_t {
  kSet,
  kGet,
  kDelete,
  kSetEncode,      ///< server-side encode + fragment distribution
  kGetDecode,      ///< server-side fragment aggregation + decode
  kScan,           ///< enumerate stored keys (repair discovery)
  kSetStripeIndex, ///< install packed-stripe locator entries (batched)
  kPlacementEpoch, ///< control plane: install a new placement epoch
};

[[nodiscard]] constexpr std::string_view to_string(Verb v) noexcept {
  switch (v) {
    case Verb::kSet: return "SET";
    case Verb::kGet: return "GET";
    case Verb::kDelete: return "DELETE";
    case Verb::kSetEncode: return "SET_ENCODE";
    case Verb::kGetDecode: return "GET_DECODE";
    case Verb::kScan: return "SCAN";
    case Verb::kSetStripeIndex: return "SET_STRIPE_INDEX";
    case Verb::kPlacementEpoch: return "PLACEMENT_EPOCH";
  }
  return "?";
}

/// Metadata stored with (and returned alongside) each erasure-coded
/// fragment, sufficient for any reader to size its reassembly buffers.
struct ChunkInfo {
  std::uint64_t original_size = 0;  ///< whole-value size before chunking
  std::uint32_t chunk_index = 0;    ///< 0..k+m-1 (>= k means parity)
  std::uint16_t k = 0;
  std::uint16_t m = 0;

  [[nodiscard]] bool operator==(const ChunkInfo&) const = default;
};

/// Locator for a value packed into a shared stripe: which stripe holds it
/// and where the value bytes sit inside the stripe payload. `stripe_bytes`
/// (the pre-encode payload size of the whole stripe) rides along so a
/// reader can compute the stripe's fragment layout without an extra probe.
struct StripeLoc {
  Key stripe;                     ///< stripe base key (fragment placement)
  std::uint32_t offset = 0;       ///< value offset within stripe payload
  std::uint32_t len = 0;          ///< value length in bytes
  std::uint32_t stripe_bytes = 0; ///< total stripe payload size

  [[nodiscard]] bool operator==(const StripeLoc&) const = default;
};

/// One entry of a batched kSetStripeIndex install: the user key plus its
/// sub-slot range. The stripe base key and stripe_bytes are shared by the
/// whole batch and ride in Request::key / Request::chunk->original_size.
struct StripeIndexEntry {
  Key key;
  std::uint32_t offset = 0;
  std::uint32_t len = 0;

  [[nodiscard]] bool operator==(const StripeIndexEntry&) const = default;
};

struct Request {
  Verb verb = Verb::kGet;
  Key key;
  SharedBytes value;  ///< payload for kSet/kSetEncode; null otherwise
  std::optional<ChunkInfo> chunk;
  /// kGet only: return existence + ChunkInfo without the payload (cheap
  /// presence probe for repair discovery).
  bool head_only = false;
  /// kSetStripeIndex: locator entries to install (Request::key is the
  /// stripe base key, chunk->original_size the stripe payload size).
  std::vector<StripeIndexEntry> stripe_index;
  /// kGet/kDelete: operate on the server's stripe locator directory for
  /// `key` instead of the value store (packed-path lookup / unlink).
  /// kScan: enumerate the locator directory instead of stored keys.
  bool stripe_lookup = false;
  /// kSet/kSetStripeIndex: only install when the key (or locator entry) is
  /// absent, replying kOk either way. Migration copies use this so a
  /// concurrent client write under the new epoch is never clobbered by the
  /// older bytes still being moved.
  bool if_absent = false;
  /// Placement epoch the sender resolved owners under; 0 = placement-
  /// unaware (legacy). Servers bounce *writes* with kWrongEpoch when this
  /// is non-zero and older than their installed epoch. For
  /// kPlacementEpoch, the epoch being installed. Metadata like `trace`: it
  /// rides in framing the cost model already charges, so it adds no
  /// simulated wire bytes.
  std::uint64_t epoch = 0;
  std::uint64_t rpc_id = 0;
  NodeId reply_to = 0;
  /// Causal trace header: tags the fabric transfer and the server handler
  /// with the originating op's trace id. All-zero (invalid) when tracing is
  /// off; carries no simulated bytes (tracing never changes wire timing).
  obs::TraceContext trace;
};

struct Response {
  std::uint64_t rpc_id = 0;
  StatusCode code = StatusCode::kOk;
  SharedBytes value;  ///< payload for successful gets; null otherwise
  std::optional<ChunkInfo> chunk;
  std::vector<Key> keys;  ///< kScan results
  /// Successful stripe_lookup gets: the locator for the requested key.
  std::optional<StripeLoc> stripe;
  /// Causal trace header (see Request::trace): the responder echoes the
  /// request's trace id with its handler span as the new parent.
  obs::TraceContext trace;
  /// Responder's handler queue depth at reply time — the load signal behind
  /// client-side read-set selection. Metadata, like `trace`: it rides in
  /// headers the cost model already charges, so it carries no simulated
  /// wire bytes (payload_bytes excludes it).
  std::uint32_t queue_depth = 0;
  /// Responder's installed placement epoch, echoed on kWrongEpoch bounces
  /// and kPlacementEpoch acks (0 otherwise). Header metadata, no wire
  /// bytes — see `queue_depth`.
  std::uint64_t epoch = 0;
};

using WireBody = std::variant<Request, Response>;
using KvFabric = net::Fabric<WireBody>;
using KvEnvelope = net::Envelope<WireBody>;

/// Payload size used for wire timing (key + value + fixed verb framing).
/// Stripe-index batches and locator replies are charged per entry; both
/// contribute zero bytes when absent, so the legacy paths are unchanged.
[[nodiscard]] inline std::size_t payload_bytes(const Request& r) noexcept {
  std::size_t index_bytes = 0;
  for (const auto& e : r.stripe_index) index_bytes += e.key.size() + 12;
  return r.key.size() + (r.value ? r.value->size() : 0) + index_bytes + 16;
}

[[nodiscard]] inline std::size_t payload_bytes(const Response& r) noexcept {
  std::size_t keys_bytes = 0;
  for (const auto& k : r.keys) keys_bytes += k.size() + 4;
  const std::size_t loc_bytes =
      r.stripe ? r.stripe->stripe.size() + 12 : 0;
  return (r.value ? r.value->size() : 0) + keys_bytes + loc_bytes + 16;
}

/// Key under which fragment `index` of `key` is stored. The separator byte
/// cannot occur in benchmarks' printable keys, so chunk keys never collide
/// with user keys.
[[nodiscard]] inline Key chunk_key(const Key& key, std::size_t index) {
  Key out = key;
  out.push_back('\x01');
  out.push_back(static_cast<char>('0' + index));
  return out;
}

/// Inverse of chunk_key: base key and fragment slot, or nullopt when the
/// key is not a fragment key.
struct ParsedChunkKey {
  Key base;
  std::size_t slot = 0;
};

[[nodiscard]] inline std::optional<ParsedChunkKey> parse_chunk_key(
    const Key& stored) {
  if (stored.size() < 2 || stored[stored.size() - 2] != '\x01') {
    return std::nullopt;
  }
  ParsedChunkKey out;
  out.base = stored.substr(0, stored.size() - 2);
  out.slot = static_cast<std::size_t>(stored.back() - '0');
  return out;
}

/// Synthetic base key for packed stripe `seq` minted by `client`. The
/// leading '\x02' byte keeps stripe keys disjoint from user keys and from
/// '\x01'-separated fragment keys; the client id makes concurrently packing
/// clients mint non-colliding stripes.
[[nodiscard]] inline Key stripe_key(NodeId client, std::uint64_t seq) {
  Key out;
  out.push_back('\x02');
  out.push_back('s');
  out += std::to_string(client);
  out.push_back('.');
  out += std::to_string(seq);
  return out;
}

}  // namespace hpres::kv
