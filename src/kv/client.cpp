#include "kv/client.h"

namespace hpres::kv {

sim::Future<Response> Client::call_async(NodeId dst, Request req) {
  // Stamp the placement epoch at issue time, synchronously with the
  // caller's owner resolution: {dst, epoch} always describe the same ring.
  if (placement_ != nullptr && req.epoch == 0) {
    req.epoch = placement_->epoch;
  }
  sim::Promise<Response> promise(sim());
  sim::Future<Response> future = promise.get_future();
  sim().spawn(issue_coro(this, dst, std::move(req), std::move(promise)));
  return future;
}

sim::Task<Response> Client::invoke(NodeId dst, Request req) {
  const sim::Future<Response> f = call_async(dst, std::move(req));
  co_return co_await f.wait();
}

sim::Task<void> Client::issue_coro(Client* self, NodeId dst, Request req,
                                   sim::Promise<Response> out) {
  ++self->stats_.requests;
  const SimDur issue =
      self->params_.issue_cpu_ns +
      static_cast<SimDur>(self->params_.issue_ns_per_byte *
                          static_cast<double>(payload_bytes(req)));
  co_await self->cpu_.execute(issue);
  Response resp = co_await self->call_guarded(dst, std::move(req));
  ++self->stats_.responses;
  if (resp.code == StatusCode::kUnavailable) ++self->stats_.unavailable;
  if (resp.code == StatusCode::kTimeout) ++self->stats_.timeouts;
  out.set_value(std::move(resp));
}

}  // namespace hpres::kv
