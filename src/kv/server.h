// KV server process: storage engine + worker pool + request handlers,
// including the server-side erasure offloads (kSetEncode / kGetDecode)
// that implement the paper's Era-SE-* and Era-*-SD designs.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "ec/chunker.h"
#include "ec/codec.h"
#include "ec/cost_model.h"
#include "kv/hash_ring.h"
#include "kv/membership.h"
#include "kv/rpc.h"
#include "kv/store.h"
#include "sim/sync.h"

namespace hpres::kv {

struct ServerParams {
  std::uint32_t workers = 8;            ///< worker threads (paper: 8)
  SimDur request_cpu_ns = 1'500;        ///< per-request dispatch + hashing
  double store_ns_per_byte = 0.5;       ///< value copy + slab alloc (~2 GB/s)
  /// Read path is far cheaper: responses DMA straight out of the
  /// registered slab (RDMA-Memcached's near-zero-copy get).
  double read_ns_per_byte = 0.12;
  std::uint64_t memory_bytes = 20ULL * 1024 * 1024 * 1024;  ///< 20 GB default
  /// SSD overflow tier (0 = disabled): the SSD-assisted hybrid design of
  /// the RDMA-Memcached the paper builds on. Rates model a PCIe SSD.
  std::uint64_t ssd_bytes = 0;
  SimDur ssd_access_ns = 60'000;       ///< device access latency per op
  double ssd_read_ns_per_byte = 0.7;   ///< ~1.4 GB/s read
  double ssd_write_ns_per_byte = 1.1;  ///< ~0.9 GB/s write (demotion)
};

/// Erasure-coding context a server needs only when it participates in
/// server-side encode/decode. All referenced objects must outlive the
/// server.
struct ServerEcContext {
  const ec::Codec* codec = nullptr;
  ec::CostModel cost;
  const HashRing* ring = nullptr;
  const Membership* membership = nullptr;
  const std::vector<NodeId>* server_nodes = nullptr;  ///< index -> NodeId
  std::size_t my_index = 0;                           ///< index in the list
  /// When false, chunk payloads are size-only placeholders (benchmarks);
  /// when true, real bytes flow and decode really reconstructs (tests).
  bool materialize = true;
};

class Server final : public RpcNode {
 public:
  Server(sim::Simulator& sim, KvFabric& fabric, NodeId id,
         ServerParams params);

  /// Enables server-side erasure offload handling.
  void enable_ec(ServerEcContext ctx) { ec_ = std::move(ctx); }

  [[nodiscard]] StorageEngine& store() noexcept { return store_; }
  [[nodiscard]] const StorageEngine& store() const noexcept { return store_; }
  [[nodiscard]] const ServerParams& params() const noexcept { return params_; }

  /// Bytes held by the packed-stripe locator directory (key + stripe key +
  /// offset/len per entry) — counted into the memory-efficiency accounting
  /// alongside store().bytes_used().
  [[nodiscard]] std::uint64_t stripe_index_bytes() const noexcept {
    return stripe_dir_bytes_;
  }
  [[nodiscard]] std::size_t stripe_index_entries() const noexcept {
    return stripe_dir_.size();
  }

  /// Marks this server failed: it stops serving (requests are dropped) and
  /// the fabric refuses traffic to it. With no RpcPolicy armed, callers
  /// must ensure no operation is mid-flight to this node
  /// (controlled-failure experiments); under a FaultSchedule, in-flight
  /// callers resolve via RPC deadlines instead.
  void fail();
  void recover();
  [[nodiscard]] bool failed() const noexcept { return failed_; }

  /// Gray failure: multiplies this server's compute costs by `factor`
  /// (>= 1.0) without touching fabric or membership — the node still
  /// answers, just slowly. Models a queue-saturated / thermally-throttled
  /// server for hedged-read experiments. 1.0 restores normal speed.
  void set_slowdown(double factor) noexcept {
    slowdown_ = factor < 1.0 ? 1.0 : factor;
  }
  [[nodiscard]] double slowdown() const noexcept { return slowdown_; }

  /// Handler tasks queued behind busy workers right now (the load signal
  /// piggybacked on every Response).
  [[nodiscard]] std::uint32_t queue_depth() const noexcept {
    return static_cast<std::uint32_t>(workers_.queue_depth());
  }

  /// Highest placement epoch installed via kPlacementEpoch (0 until the
  /// placement plane first streams one).
  [[nodiscard]] std::uint64_t placement_epoch() const noexcept {
    return placement_epoch_;
  }
  /// Writes bounced with kWrongEpoch because they carried a stale epoch.
  [[nodiscard]] std::uint64_t wrong_epoch_bounces() const noexcept {
    return wrong_epoch_bounces_;
  }

 protected:
  void on_request(KvEnvelope env) override;

  /// Fragment distributions whose peer acks never arrived (peer failed
  /// mid-flight); diagnostics for the controlled-failure experiments.
  [[nodiscard]] std::uint64_t background_set_failures() const noexcept {
    return background_set_failures_;
  }

 private:
  /// Per-handler trace state. When the request carries a valid TraceContext
  /// and a tracer is live, acquires a handler lane (tid = node *
  /// kLanesPerNode + lane) and exposes the server-side child context that
  /// responses and peer fan-out requests propagate. mark_done() ends the
  /// "server/handle" span at the respond instant; the destructor (runs at
  /// coroutine frame destruction, which may be after background fragment
  /// distribution) emits it late if mark_done was never reached and always
  /// releases the lane. Inert (all no-ops) for untraced requests.
  class HandlerTrace {
   public:
    HandlerTrace(Server& server, const Request& req);
    ~HandlerTrace();
    HandlerTrace(const HandlerTrace&) = delete;
    HandlerTrace& operator=(const HandlerTrace&) = delete;

    [[nodiscard]] const obs::TraceContext& ctx() const noexcept {
      return ctx_;
    }
    /// Ends the "server/handle" span at the current instant.
    void mark_done();
    /// Worker-pool queue wait: the first execute() of a handler started at
    /// `enqueued_ns` and charged `cost_ns`; any excess is queueing.
    void queue_span(SimTime enqueued_ns, SimDur cost_ns);
    /// Tagged compute span on the handler lane (server-side encode/decode).
    void compute_span(std::string_view name, SimTime begin_ns);

   private:
    Server* server_ = nullptr;
    obs::Tracer* tr_ = nullptr;
    std::uint32_t lane_ = 0;
    SimTime begin_ = 0;
    bool done_ = false;
    obs::TraceContext ctx_;
  };

  static sim::Task<void> handle_plain(Server* self, KvEnvelope env);
  static sim::Task<void> handle_set_encode(Server* self, KvEnvelope env);
  static sim::Task<void> handle_get_decode(Server* self, KvEnvelope env);

  /// Scales a compute cost by the gray-failure slowdown. The common case
  /// (slowdown 1.0) returns the cost unchanged — no float rounding, so
  /// healthy-server schedules stay bit-identical.
  [[nodiscard]] SimDur slow(SimDur cost) const noexcept {
    if (slowdown_ == 1.0) return cost;
    return static_cast<SimDur>(static_cast<double>(cost) * slowdown_);
  }
  [[nodiscard]] SimDur touch_cost(std::size_t bytes) const noexcept {
    return slow(params_.request_cpu_ns +
                static_cast<SimDur>(params_.store_ns_per_byte *
                                    static_cast<double>(bytes)));
  }
  [[nodiscard]] SimDur read_cost(std::size_t bytes) const noexcept {
    return slow(params_.request_cpu_ns +
                static_cast<SimDur>(params_.read_ns_per_byte *
                                    static_cast<double>(bytes)));
  }

  /// respond() with the current handler queue depth stamped on the
  /// response, dropped when this server has failed. All handler replies go
  /// through here so the load signal is never forgotten.
  void reply(NodeId dst, Response resp) {
    if (failed_) return;
    resp.queue_depth = queue_depth();
    respond(dst, std::move(resp));
  }

  ServerParams params_;
  StorageEngine store_;
  sim::WorkerPool workers_;
  /// Packed-stripe locator directory: user key -> sub-slot location.
  /// Deliberately outside the LRU store (locators must not be evicted
  /// under value pressure); bytes are accounted separately.
  std::map<Key, StripeLoc> stripe_dir_;
  std::uint64_t stripe_dir_bytes_ = 0;
  std::optional<ServerEcContext> ec_;
  obs::LanePool handler_lanes_;
  bool failed_ = false;
  double slowdown_ = 1.0;
  std::uint64_t background_set_failures_ = 0;
  std::uint64_t placement_epoch_ = 0;
  std::uint64_t wrong_epoch_bounces_ = 0;
};

}  // namespace hpres::kv
