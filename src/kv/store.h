// In-memory storage engine of one KV server: hash table + LRU eviction
// under a byte-capacity cap, with the accounting needed by the paper's
// memory-efficiency experiment (Figure 10): bytes used, evictions, and the
// bytes of cached data lost to eviction pressure.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "kv/protocol.h"
#include "obs/metrics.h"

namespace hpres::kv {

struct StoreStats {
  std::uint64_t set_ops = 0;
  std::uint64_t get_ops = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;       ///< items evicted under memory pressure
  std::uint64_t evicted_bytes = 0;   ///< value bytes lost to eviction
  std::uint64_t rejected_sets = 0;   ///< values larger than total capacity
  // SSD tier (when enabled): evictions demote instead of dropping.
  std::uint64_t demotions = 0;       ///< items moved memory -> SSD
  std::uint64_t demoted_bytes = 0;
  std::uint64_t promotions = 0;      ///< SSD hits moved back to memory
  std::uint64_t ssd_hits = 0;

  /// Registers every field into `reg` under component "store".
  void register_with(obs::MetricsRegistry& reg, std::string node,
                     std::string op = {}) const {
    const obs::MetricLabels labels{"store", std::move(node), std::move(op)};
    reg.bind_counter("store.set_ops", labels, &set_ops);
    reg.bind_counter("store.get_ops", labels, &get_ops);
    reg.bind_counter("store.hits", labels, &hits);
    reg.bind_counter("store.misses", labels, &misses);
    reg.bind_counter("store.evictions", labels, &evictions);
    reg.bind_counter("store.evicted_bytes", labels, &evicted_bytes);
    reg.bind_counter("store.rejected_sets", labels, &rejected_sets);
    reg.bind_counter("store.demotions", labels, &demotions);
    reg.bind_counter("store.demoted_bytes", labels, &demoted_bytes);
    reg.bind_counter("store.promotions", labels, &promotions);
    reg.bind_counter("store.ssd_hits", labels, &ssd_hits);
  }
};

/// Capacity of the optional SSD tier backing the in-memory store — the
/// SSD-assisted hybrid design of the RDMA-Memcached the paper builds on
/// (its Boldio servers cache into "SSD-assisted RDMA-enabled Memcached").
struct SsdConfig {
  std::uint64_t capacity_bytes = 0;
};

class StorageEngine {
 public:
  /// Per-item metadata + hash-table overhead charged against capacity,
  /// matching Memcached's item header ballpark.
  static constexpr std::size_t kItemOverhead = 56;

  explicit StorageEngine(std::uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  /// Enables the SSD overflow tier: memory evictions demote to SSD, SSD
  /// hits promote back (and report from_ssd so the server can charge the
  /// device latency). SSD-capacity overflow is real data loss.
  void enable_ssd(SsdConfig ssd) { ssd_capacity_ = ssd.capacity_bytes; }
  [[nodiscard]] bool ssd_enabled() const noexcept {
    return ssd_capacity_ > 0;
  }
  [[nodiscard]] std::uint64_t ssd_bytes_used() const noexcept {
    return ssd_used_;
  }
  [[nodiscard]] std::uint64_t ssd_capacity() const noexcept {
    return ssd_capacity_;
  }

  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;

  /// Inserts or replaces; evicts LRU items as needed. Fails with
  /// kOutOfMemory only when the single item exceeds total capacity.
  Status set(const Key& key, SharedBytes value,
             std::optional<ChunkInfo> chunk = std::nullopt);

  struct GetResult {
    SharedBytes value;
    std::optional<ChunkInfo> chunk;
    bool from_ssd = false;  ///< served via promotion from the SSD tier
  };

  /// Fetches and refreshes LRU position.
  Result<GetResult> get(const Key& key);

  /// Removes a key; returns whether it existed.
  bool erase(const Key& key);

  /// Drops every item from both tiers without touching the op counters —
  /// total state loss of a crashed node (FaultSchedule crash-with-wipe).
  void clear() {
    map_.clear();
    lru_.clear();
    used_ = 0;
    ssd_map_.clear();
    ssd_lru_.clear();
    ssd_used_ = 0;
  }

  /// Snapshot of every stored key, in LRU order (most recent first). Used
  /// by the scan verb for repair discovery; O(items).
  [[nodiscard]] std::vector<Key> keys() const {
    return {lru_.begin(), lru_.end()};
  }

  [[nodiscard]] std::uint64_t bytes_used() const noexcept { return used_; }
  [[nodiscard]] std::uint64_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t items() const noexcept { return map_.size(); }
  [[nodiscard]] const StoreStats& stats() const noexcept { return stats_; }

 private:
  struct Entry {
    SharedBytes value;
    std::optional<ChunkInfo> chunk;
    std::size_t charged_bytes = 0;
    std::list<Key>::iterator lru_it;
  };

  /// Erasure-coded fragments carry a stored ChunkInfo; charge its bytes so
  /// the memory-efficiency accounting sees per-fragment metadata too.
  [[nodiscard]] static std::size_t charge_for(
      const Key& key, const SharedBytes& value,
      const std::optional<ChunkInfo>& chunk) {
    return key.size() + (value ? value->size() : 0) + kItemOverhead +
           (chunk ? sizeof(ChunkInfo) : 0);
  }

  void evict_one();
  void evict_one_from_ssd();
  void demote_to_ssd(const Key& key, Entry entry);

  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::unordered_map<Key, Entry> map_;
  std::list<Key> lru_;  // front = most recent
  // SSD tier (enabled when ssd_capacity_ > 0).
  std::uint64_t ssd_capacity_ = 0;
  std::uint64_t ssd_used_ = 0;
  std::unordered_map<Key, Entry> ssd_map_;
  std::list<Key> ssd_lru_;
  StoreStats stats_;
};

}  // namespace hpres::kv
