// Request/response plumbing shared by clients and servers.
//
// Every node owns one fabric inbox. A dispatch loop routes incoming
// Requests to the subclass handler (spawned, so slow handlers never block
// the queue — the multi-threaded Memcached model) and matches incoming
// Responses to pending calls by rpc id. Servers use the same machinery to
// talk to their peers (the paper's server-embedded ARPE with Libmemcached
// client, Section IV-A).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "kv/protocol.h"
#include "sim/future.h"

namespace hpres::kv {

class RpcNode {
 public:
  RpcNode(sim::Simulator& sim, KvFabric& fabric, NodeId id)
      : sim_(&sim), fabric_(&fabric), id_(id) {}
  virtual ~RpcNode() = default;
  RpcNode(const RpcNode&) = delete;
  RpcNode& operator=(const RpcNode&) = delete;

  /// Begins dispatching this node's inbox. Must be called exactly once,
  /// before the simulation runs; the RpcNode must outlive the simulation.
  void start() { sim_->spawn(dispatch_loop(this)); }

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] sim::Simulator& sim() const noexcept { return *sim_; }
  [[nodiscard]] KvFabric& fabric() const noexcept { return *fabric_; }

  /// Sends a request; the future resolves with the peer's response. A
  /// request to a node known-dead by the fabric resolves immediately with
  /// kUnavailable (the HCA-level send fails fast; discovery via the
  /// membership service is the caller's job and carries T_check).
  sim::Future<Response> call(NodeId dst, Request req);

 protected:
  /// Handles one incoming request envelope. Implementations should spawn a
  /// coroutine for any work that suspends.
  virtual void on_request(KvEnvelope env) = 0;

  /// Sends a response back to a requester.
  void respond(NodeId dst, Response resp) {
    const std::size_t bytes = payload_bytes(resp);
    fabric_->send(id_, dst, WireBody{std::move(resp)}, bytes);
  }

 private:
  static sim::Task<void> dispatch_loop(RpcNode* self);

  sim::Simulator* sim_;
  KvFabric* fabric_;
  NodeId id_;
  std::uint64_t next_rpc_ = 1;
  std::unordered_map<std::uint64_t, sim::Promise<Response>> pending_;
};

}  // namespace hpres::kv
