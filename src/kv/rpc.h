// Request/response plumbing shared by clients and servers.
//
// Every node owns one fabric inbox. A dispatch loop routes incoming
// Requests to the subclass handler (spawned, so slow handlers never block
// the queue — the multi-threaded Memcached model) and matches incoming
// Responses to pending calls by rpc id. Servers use the same machinery to
// talk to their peers (the paper's server-embedded ARPE with Libmemcached
// client, Section IV-A).
//
// Failure handling: `call()` alone can hang forever if the destination
// crashes while the request or response is on the wire (the fabric drops
// silently). `call_guarded()` layers RPC deadlines with bounded retry and
// exponential backoff on top — the policy every node carries (RpcPolicy).
// With the default policy (timeout 0) the guarded paths degrade to exactly
// the unguarded ones: no timers, no extra events, bit-identical schedules.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "kv/protocol.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/future.h"

namespace hpres::kv {

/// Deadline/retry policy for guarded calls. The default (timeout_ns == 0)
/// means "wait forever" — the controlled-failure model of the paper, and
/// the only safe default for determinism-sensitive experiments (a nonzero
/// timeout spawns one timer event per call).
struct RpcPolicy {
  SimDur timeout_ns = 0;          ///< per-attempt deadline; 0 = no deadline
  std::uint32_t max_retries = 0;  ///< re-sends after the first attempt
  SimDur backoff_ns = 0;          ///< backoff before retry i: backoff << i
};

/// Per-node timeout/retry accounting.
struct RpcStats {
  std::uint64_t timeouts = 0;     ///< attempts that hit their deadline
  std::uint64_t retries = 0;      ///< re-sends issued after a timeout
  std::uint64_t expired_calls = 0;  ///< calls that exhausted every retry

  /// Registers every field into `reg` under component "rpc".
  void register_with(obs::MetricsRegistry& reg, std::string node,
                     std::string op = {}) const {
    const obs::MetricLabels labels{"rpc", std::move(node), std::move(op)};
    reg.bind_counter("rpc.timeouts", labels, &timeouts);
    reg.bind_counter("rpc.retries", labels, &retries);
    reg.bind_counter("rpc.expired_calls", labels, &expired_calls);
  }
};

class RpcNode {
 public:
  RpcNode(sim::Simulator& sim, KvFabric& fabric, NodeId id)
      : sim_(&sim), fabric_(&fabric), id_(id) {}
  virtual ~RpcNode() = default;
  RpcNode(const RpcNode&) = delete;
  RpcNode& operator=(const RpcNode&) = delete;

  /// Begins dispatching this node's inbox. Must be called exactly once,
  /// before the simulation runs; the RpcNode must outlive the simulation.
  void start() { sim_->spawn(dispatch_loop(this)); }

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] sim::Simulator& sim() const noexcept { return *sim_; }
  [[nodiscard]] KvFabric& fabric() const noexcept { return *fabric_; }

  void set_policy(RpcPolicy policy) noexcept { policy_ = policy; }
  [[nodiscard]] const RpcPolicy& policy() const noexcept { return policy_; }
  [[nodiscard]] const RpcStats& rpc_stats() const noexcept {
    return rpc_stats_;
  }

  /// Attaches a span tracer for "rpc/timeout" spans (emitted on this
  /// node's NIC track). Purely observational.
  void set_rpc_tracer(obs::Tracer* tracer, std::uint32_t pid = 0) noexcept {
    tracer_ = tracer;
    trace_pid_ = pid;
  }

  /// Attaches the cluster health plane: every matched response feeds the
  /// destination server's RTT estimate, every guarded-call deadline expiry
  /// feeds its timeout counter. Observation-only — never alters call
  /// behaviour or timing.
  void set_health_signals(obs::HealthSignals* signals) noexcept {
    health_ = signals;
  }

  /// Attaches the flight recorder; timeout/retry events land in the ring
  /// of the *destination* node (the node being suspected), with the caller
  /// in the `b` field.
  void set_flight_recorder(obs::FlightRecorder* flight) noexcept {
    flight_ = flight;
  }

  /// Sends a request; the future resolves with the peer's response. A
  /// request to a node known-dead by the fabric resolves immediately with
  /// kUnavailable (the HCA-level send fails fast); a crash AFTER the send
  /// leaves the future unresolved forever — use call_guarded when that can
  /// happen.
  sim::Future<Response> call(NodeId dst, Request req);

  /// `call` under this node's RpcPolicy: each attempt races the response
  /// against the deadline; a timed-out attempt is cancelled (a late
  /// response is dropped as stale) and retried after exponential backoff,
  /// until max_retries is exhausted — then resolves kTimeout. With the
  /// default policy this is exactly call()+wait(). Retries re-send the same
  /// request (values are shared buffers, so the copy is cheap).
  sim::Task<Response> call_guarded(NodeId dst, Request req);

  /// call_guarded wrapped into a Future so fan-out paths can overlap many
  /// guarded calls. With the default policy no coroutine is spawned and
  /// this is exactly call().
  sim::Future<Response> guarded_future(NodeId dst, Request req);

  /// Abandons a pending call: its future will never resolve through the
  /// dispatch loop, and a late response is ignored as stale.
  void cancel(std::uint64_t rpc_id) { pending_.erase(rpc_id); }

  /// Abandons a pending call AND resolves its future with kCancelled, so a
  /// coroutine awaiting that future unwinds instead of leaking parked until
  /// process exit. A late wire response is dropped as stale, exactly as
  /// with cancel(). No-op for unknown/already-resolved ids.
  void cancel_resolve(std::uint64_t rpc_id);

  /// Rpc id issued by this node's most recent call() (0 when that call
  /// failed fast). Lets fan-out issuers remember ids for cancel_resolve.
  [[nodiscard]] std::uint64_t last_call_id() const noexcept {
    return last_call_id_;
  }

 protected:
  /// Handles one incoming request envelope. Implementations should spawn a
  /// coroutine for any work that suspends.
  virtual void on_request(KvEnvelope env) = 0;

  /// Sends a response back to a requester. The response's trace context
  /// (echoed from the request by the handler) tags the return transfer.
  void respond(NodeId dst, Response resp) {
    const std::size_t bytes = payload_bytes(resp);
    const obs::TraceContext trace = resp.trace;
    fabric_->send(id_, dst, WireBody{std::move(resp)}, bytes, trace);
  }

  /// The attached tracer when live, nullptr otherwise (handlers emit
  /// server-side spans through this).
  [[nodiscard]] obs::Tracer* live_tracer() const noexcept {
    return (tracer_ != nullptr && tracer_->enabled()) ? tracer_ : nullptr;
  }
  [[nodiscard]] std::uint32_t obs_pid() const noexcept { return trace_pid_; }

 private:
  static sim::Task<void> dispatch_loop(RpcNode* self);
  static sim::Task<void> guarded_coro(RpcNode* self, NodeId dst, Request req,
                                      sim::Promise<Response> out);

  /// One in-flight call: the promise to resolve plus where/when it went,
  /// so the dispatch loop can attribute the RTT to the destination.
  struct PendingCall {
    sim::Promise<Response> promise;
    NodeId dst = 0;
    SimTime sent_at = 0;
  };

  sim::Simulator* sim_;
  KvFabric* fabric_;
  NodeId id_;
  std::uint64_t next_rpc_ = 1;
  std::uint64_t last_call_id_ = 0;  ///< rpc id issued by the latest call()
  std::unordered_map<std::uint64_t, PendingCall> pending_;
  RpcPolicy policy_;
  RpcStats rpc_stats_;
  obs::Tracer* tracer_ = nullptr;
  std::uint32_t trace_pid_ = 0;
  obs::HealthSignals* health_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
};

}  // namespace hpres::kv
