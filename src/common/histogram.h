// Log-bucketed latency histogram (HdrHistogram-style) and simple running
// statistics. Used by every benchmark harness to report averages and
// percentiles of simulated latencies.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

namespace hpres {

/// Histogram over non-negative int64 values with bounded relative error.
///
/// Values below 2^6 are recorded exactly; every higher power-of-two octave
/// is split into 64 linear sub-buckets keyed by the six bits following the
/// leading bit, bounding relative error by 1/64 (~1.6%) — ample for latency
/// reporting.
class LatencyHistogram {
 public:
  static constexpr int kSubBucketBits = 6;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;  // 64

  LatencyHistogram() : counts_(kBucketCount, 0) {}

  void record(std::int64_t value) noexcept {
    if (value < 0) value = 0;
    ++counts_[bucket_index(static_cast<std::uint64_t>(value))];
    ++total_;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }

  void merge(const LatencyHistogram& other) noexcept {
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
    total_ += other.total_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  void reset() noexcept {
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
    sum_ = 0;
    min_ = std::numeric_limits<std::int64_t>::max();
    max_ = std::numeric_limits<std::int64_t>::min();
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  [[nodiscard]] std::int64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::int64_t min() const noexcept { return total_ ? min_ : 0; }
  [[nodiscard]] std::int64_t max() const noexcept { return total_ ? max_ : 0; }
  [[nodiscard]] double mean() const noexcept {
    return total_ ? static_cast<double>(sum_) / static_cast<double>(total_)
                  : 0.0;
  }

  /// Value at quantile q in [0,1]: the representative (midpoint) value of
  /// the bucket containing the q-th sample, clamped to [min,max].
  [[nodiscard]] std::int64_t quantile(double q) const noexcept {
    if (total_ == 0) return 0;
    q = std::clamp(q, 0.0, 1.0);
    const auto rank =
        static_cast<std::uint64_t>(q * static_cast<double>(total_ - 1));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      seen += counts_[i];
      if (seen > rank) {
        return std::clamp(saturating_midpoint(i), min_, max_);
      }
    }
    return max_;
  }

  [[nodiscard]] std::int64_t p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] std::int64_t p95() const noexcept { return quantile(0.95); }
  [[nodiscard]] std::int64_t p99() const noexcept { return quantile(0.99); }

  // --- Bucket introspection (metric export, property tests) ---------------

  /// Exact region [0, 64) plus 58 octaves (exponents 6..63) of 64
  /// sub-buckets.
  static constexpr std::size_t kBucketCount =
      kSubBuckets + (64 - kSubBucketBits) * kSubBuckets;

  [[nodiscard]] static constexpr std::size_t bucket_count() noexcept {
    return kBucketCount;
  }

  /// Samples recorded into bucket `index`.
  [[nodiscard]] std::uint64_t count_at(std::size_t index) const noexcept {
    return counts_[index];
  }

  /// Bucket holding value `v`.
  static std::size_t bucket_index(std::uint64_t v) noexcept {
    if (v < kSubBuckets) return static_cast<std::size_t>(v);
    const int exp = 63 - std::countl_zero(v);  // >= kSubBucketBits
    const auto sub = static_cast<std::size_t>(
        (v >> (exp - kSubBucketBits)) & (kSubBuckets - 1));
    return static_cast<std::size_t>(kSubBuckets) +
           static_cast<std::size_t>(exp - kSubBucketBits) * kSubBuckets + sub;
  }

  /// Exact representative (midpoint) value of bucket `index`. Unsigned:
  /// top-octave (exponent 63) midpoints exceed int64 range — callers that
  /// need a recordable value use saturating_midpoint().
  static std::uint64_t bucket_midpoint(std::size_t index) noexcept {
    if (index < kSubBuckets) return static_cast<std::uint64_t>(index);
    const std::size_t rel = index - kSubBuckets;
    const int exp = static_cast<int>(rel / kSubBuckets) + kSubBucketBits;
    const std::uint64_t sub = rel % kSubBuckets;
    const std::uint64_t low =
        (std::uint64_t{1} << exp) | (sub << (exp - kSubBucketBits));
    const std::uint64_t width = std::uint64_t{1} << (exp - kSubBucketBits);
    return low + width / 2;
  }

  /// Midpoint clamped into int64 range (recordable-value domain).
  static std::int64_t saturating_midpoint(std::size_t index) noexcept {
    const std::uint64_t mid = bucket_midpoint(index);
    constexpr auto kMax =
        static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max());
    return mid > kMax ? std::numeric_limits<std::int64_t>::max()
                      : static_cast<std::int64_t>(mid);
  }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = std::numeric_limits<std::int64_t>::max();
  std::int64_t max_ = std::numeric_limits<std::int64_t>::min();
};

/// Running scalar statistics (count/mean/min/max) without storing samples.
class RunningStats {
 public:
  void record(double x) noexcept {
    ++n_;
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return n_ ? sum_ / static_cast<double>(n_) : 0.0;
  }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace hpres
