// Lightweight Status / Result<T> error-handling vocabulary types.
//
// The simulator-driven code paths in this project are exception-free by
// design (an error such as "server unreachable" is an expected outcome of a
// distributed operation, not an exceptional condition — see C++ Core
// Guidelines E.3). Constructor/invariant violations still throw.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace hpres {

/// Error category for distributed KV operations.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kNotFound,          ///< Key (or chunk) not present on the server.
  kUnavailable,       ///< Server failed / unreachable.
  kTimeout,           ///< Operation exceeded its deadline.
  kOutOfMemory,       ///< Server memory cap reached and eviction impossible.
  kTooManyFailures,   ///< Not enough surviving fragments to reconstruct.
  kInvalidArgument,   ///< Malformed request or unsupported parameter.
  kResourceExhausted, ///< Client-side buffer pool / window exhausted.
  kCancelled,         ///< Call abandoned by its issuer (hedged-read straggler).
  kWrongEpoch,        ///< Request stamped with a stale placement epoch;
                      ///< retryable once the caller refreshes its view.
  kInternal,          ///< Invariant violation; indicates a bug.
};

/// Human-readable name of a StatusCode (stable, for logs and tests).
constexpr std::string_view to_string(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kTimeout: return "TIMEOUT";
    case StatusCode::kOutOfMemory: return "OUT_OF_MEMORY";
    case StatusCode::kTooManyFailures: return "TOO_MANY_FAILURES";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kWrongEpoch: return "WRONG_EPOCH";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

/// Result of an operation that can fail: a code plus optional detail message.
/// Cheap to copy when OK (no allocation).
class [[nodiscard]] Status {
 public:
  Status() noexcept = default;
  explicit Status(StatusCode code) noexcept : code_(code) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() noexcept { return Status{}; }

  [[nodiscard]] bool ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  [[nodiscard]] std::string to_string() const {
    std::string out{hpres::to_string(code_)};
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.to_string();
}

/// Expected-style value-or-status. `Result<T>` holds exactly one of a T or a
/// non-OK Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit construction from value / error keeps call sites readable
  // (`return value;` / `return Status{...};`), mirroring absl::StatusOr.
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : storage_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(storage_).ok() &&
           "Result<T> must not be constructed from an OK status");
  }
  Result(StatusCode code) : storage_(Status{code}) {  // NOLINT(google-explicit-constructor)
    assert(code != StatusCode::kOk);
  }

  [[nodiscard]] bool ok() const noexcept {
    return std::holds_alternative<T>(storage_);
  }

  [[nodiscard]] Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(storage_);
  }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(storage_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(storage_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(storage_));
  }

  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T* operator->() { return &value(); }

 private:
  std::variant<T, Status> storage_;
};

}  // namespace hpres
