// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the simulator (workload key choice, value
// sizes, jitter) flows from explicitly seeded generators so that every
// experiment is reproducible bit-for-bit. xoshiro256** is used for speed;
// SplitMix64 seeds it and doubles as a hash finalizer.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace hpres {

/// SplitMix64: statistically strong 64-bit mixer. Used for seeding and as a
/// cheap avalanche hash (e.g. scrambling Zipfian ranks).
constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
/// Satisfies UniformRandomBitGenerator so it composes with <random>.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0xC0FFEE) noexcept {
    // SplitMix64 expansion is the canonical way to fill xoshiro state and
    // guarantees a non-zero state for every seed.
    std::uint64_t sm = seed;
    for (auto& word : state_) {
      sm += 0x9E3779B97F4A7C15ULL;
      word = splitmix64(sm);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire reduction).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    __extension__ using Uint128 = unsigned __int128;
    const Uint128 product = static_cast<Uint128>((*this)()) * bound;
    return static_cast<std::uint64_t>(product >> 64);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace hpres
