// Simulation time and data-size units.
//
// All simulated time is carried as integral nanoseconds (`SimTime`/`SimDur`)
// to keep event ordering exact; helpers convert to human units only at the
// reporting boundary.
#pragma once

#include <cstdint>

namespace hpres {

using SimTime = std::int64_t;  ///< Absolute simulated time, nanoseconds.
using SimDur = std::int64_t;   ///< Simulated duration, nanoseconds.

namespace units {

constexpr SimDur kNanosecond = 1;
constexpr SimDur kMicrosecond = 1'000;
constexpr SimDur kMillisecond = 1'000'000;
constexpr SimDur kSecond = 1'000'000'000;

constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = 1024 * kKiB;
constexpr std::uint64_t kGiB = 1024 * kMiB;

/// Converts a duration in nanoseconds to floating-point microseconds.
constexpr double to_us(SimDur ns) noexcept {
  return static_cast<double>(ns) / 1e3;
}
/// Converts a duration in nanoseconds to floating-point milliseconds.
constexpr double to_ms(SimDur ns) noexcept {
  return static_cast<double>(ns) / 1e6;
}
/// Converts a duration in nanoseconds to floating-point seconds.
constexpr double to_s(SimDur ns) noexcept {
  return static_cast<double>(ns) / 1e9;
}

/// Time to move `bytes` at `gbps` gigabits per second (decimal gigabits, as
/// network link rates are quoted), in integral nanoseconds, rounded up.
constexpr SimDur transfer_time_ns(std::uint64_t bytes, double gbps) noexcept {
  if (gbps <= 0.0) return 0;
  const double ns = static_cast<double>(bytes) * 8.0 / gbps;  // bits / (Gbit/s) = ns
  const auto floor_ns = static_cast<SimDur>(ns);
  return floor_ns + (static_cast<double>(floor_ns) < ns ? 1 : 0);
}

}  // namespace units
}  // namespace hpres
