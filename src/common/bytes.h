// Byte-buffer vocabulary types shared across the erasure-coding and KV
// layers. A `Bytes` owns its storage; `ConstByteSpan`/`ByteSpan` are the
// non-owning views used at API boundaries (C++ Core Guidelines I.13).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <span>
#include <string_view>
#include <vector>

namespace hpres {

using Bytes = std::vector<std::byte>;
using ByteSpan = std::span<std::byte>;
using ConstByteSpan = std::span<const std::byte>;

/// Shared immutable payload. Message fan-out (e.g. replicating one value to
/// F servers) aliases one buffer instead of copying it per destination.
using SharedBytes = std::shared_ptr<const Bytes>;

inline SharedBytes make_shared_bytes(Bytes b) {
  return std::make_shared<const Bytes>(std::move(b));
}

/// Shared zero-filled buffer of a given size, served from a process-wide
/// cache. Benchmarks run "size-only" (DESIGN.md): payload content is
/// irrelevant, so every op can alias one buffer per distinct size instead
/// of allocating per-op — a simulated 100 GB experiment costs megabytes of
/// host memory. Mutex-guarded: workload generators on different shard
/// threads hit this concurrently under the parallel runtime, and the
/// distinct-size count is tiny so the lock never contends meaningfully.
inline SharedBytes zero_bytes(std::size_t size) {
  static std::mutex mu;
  static std::unordered_map<std::size_t, SharedBytes> cache;
  const std::lock_guard<std::mutex> lock(mu);
  auto& slot = cache[size];
  if (!slot) slot = std::make_shared<const Bytes>(size);
  return slot;
}

/// Builds an owning buffer from a string literal / std::string payload.
inline Bytes to_bytes(std::string_view s) {
  Bytes out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

/// Renders a byte buffer as a std::string (test/debug convenience).
inline std::string to_string(ConstByteSpan b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

/// Deterministic pseudo-random fill used by workload generators: value
/// content is a function of (seed, position) so any chunk can be re-derived
/// and verified without storing the original.
inline void fill_pattern(ByteSpan out, std::uint64_t seed) {
  std::uint64_t x = seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL;
  std::size_t i = 0;
  while (i + 8 <= out.size()) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    std::memcpy(out.data() + i, &x, 8);
    i += 8;
  }
  for (; i < out.size(); ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    out[i] = static_cast<std::byte>(x & 0xFF);
  }
}

/// Allocates and fills a patterned buffer (see fill_pattern).
inline Bytes make_pattern(std::size_t size, std::uint64_t seed) {
  Bytes out(size);
  fill_pattern(out, seed);
  return out;
}

}  // namespace hpres
