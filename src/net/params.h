// Network fabric parameterization: the simulated stand-ins for the paper's
// InfiniBand QDR/FDR/EDR interconnects (RDMA verbs transport) and IPoIB
// (TCP over IB). See DESIGN.md §2 for the substitution rationale.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/units.h"

namespace hpres::net {

using NodeId = std::uint32_t;

/// Latency/bandwidth/protocol model of one interconnect + transport stack.
struct FabricParams {
  std::string_view name = "fabric";

  /// One-way wire latency (switch + propagation + HCA), ns.
  SimDur latency_ns = 1'700;

  /// Effective point-to-point bandwidth, Gbit/s (line rate minus protocol
  /// overheads; e.g. IB QDR 32 Gbps line rate yields ~26 Gbps payload).
  double bandwidth_gbps = 26.0;

  /// Fixed per-message cost charged to the sending NIC (doorbell, header
  /// DMA, completion handling), ns.
  SimDur per_message_ns = 300;

  /// Messages at or above this payload size use the rendezvous protocol:
  /// an RTS/CTS control handshake (one extra round trip) precedes the
  /// zero-copy payload transfer. Below it, eager copies into pre-registered
  /// bounce buffers (extra per-byte copy cost, no handshake). This is the
  /// RDMA-Memcached protocol switch the paper observes at 16 KB.
  std::size_t rendezvous_threshold = 16 * 1024;

  /// Eager-path copy cost, ns per payload byte (bounce-buffer memcpy).
  double eager_copy_ns_per_byte = 0.08;

  /// Bytes of wire framing added to every message.
  std::size_t header_bytes = 64;

  // --- Presets mirroring the paper's three testbeds + IPoIB baseline -----

  /// Mellanox IB QDR (32 Gbps) with RDMA verbs — the RI-QDR cluster.
  static FabricParams rdma_qdr() {
    return FabricParams{.name = "rdma-qdr",
                        .latency_ns = 1'700,
                        .bandwidth_gbps = 26.0,
                        .per_message_ns = 300,
                        .rendezvous_threshold = 16 * 1024,
                        .eager_copy_ns_per_byte = 0.08,
                        .header_bytes = 64};
  }

  /// Mellanox IB FDR (56 Gbps) — the SDSC-Comet cluster.
  static FabricParams rdma_fdr() {
    return FabricParams{.name = "rdma-fdr",
                        .latency_ns = 1'200,
                        .bandwidth_gbps = 48.0,
                        .per_message_ns = 250,
                        .rendezvous_threshold = 16 * 1024,
                        .eager_copy_ns_per_byte = 0.07,
                        .header_bytes = 64};
  }

  /// Mellanox IB EDR (100 Gbps) — the RI2-EDR cluster.
  static FabricParams rdma_edr() {
    return FabricParams{.name = "rdma-edr",
                        .latency_ns = 900,
                        .bandwidth_gbps = 90.0,
                        .per_message_ns = 200,
                        .rendezvous_threshold = 16 * 1024,
                        .eager_copy_ns_per_byte = 0.06,
                        .header_bytes = 64};
  }

  /// TCP/IP over IB (IPoIB) on the QDR fabric: kernel stack latency and a
  /// fraction of the payload bandwidth; no RDMA protocols (the rendezvous
  /// threshold is pushed out of range, every byte pays the socket copy).
  static FabricParams ipoib_qdr() {
    return FabricParams{.name = "ipoib-qdr",
                        .latency_ns = 11'000,
                        .bandwidth_gbps = 14.0,
                        .per_message_ns = 2'500,
                        .rendezvous_threshold = static_cast<std::size_t>(-1),
                        .eager_copy_ns_per_byte = 0.25,
                        .header_bytes = 96};
  }
};

}  // namespace hpres::net
