// Simulated message fabric: per-node NICs with bandwidth serialization, a
// shared wire latency, and the eager/rendezvous protocol switch of
// RDMA-Memcached. The fabric is templated on the message body so upper
// layers define their own wire protocol; delivery order per (src, dst) pair
// is FIFO, matching a reliable connected transport (IB RC queue pairs).
//
// Timing model for a payload of s bytes from A to B at time t (see
// DESIGN.md): the message first waits for A's send NIC, occupies it for
// ser = per_message + s/B (plus the rendezvous handshake for large
// messages), crosses the wire in latency L, then occupies B's receive NIC
// for its serialization time (this is what creates incast queueing when K
// chunk responses converge on one client). An unloaded transfer completes
// in per_message + L + s/B — the paper's Equation 1.
//
// Sharding: the fabric is also the shard boundary of the parallel runtime
// (DESIGN.md "Shard runtime"). Every node lives on exactly one shard; a
// send between nodes on the same shard takes the classic inline path
// (byte-identical to the single-threaded fabric), while a cross-shard send
// resolves the sender's NIC locally and posts the arrival to the receiving
// shard, which claims the receive NIC in arrival order at least one wire
// latency later — the lookahead bound the conservative scheduler runs on.
// Mutable state is strictly shard-owned during parallel runs: the sender's
// shard owns tx NIC state and send-side counters, the receiver's shard owns
// rx NIC state, inboxes, and delivery counters. Topology state (up/loss
// flags) is read-only while shards run; fault injection mutates it either
// in oracle mode or from a ShardRuntime quiesce hook (every shard thread
// parked, the barrier publishes the writes).
//
// Observability under sharding follows the same single-writer rule: each
// shard's state carries its own tracer / health-signals / flight-recorder
// domain, and every recording a send or delivery makes goes to the acting
// shard's domain (the sender's for tx spans and drops, the receiver's for
// rx spans). Domains are merged deterministically at quiescence
// (cluster::Cluster::merge_obs_domains); with one shard the "domains" are
// the classic single instances and the output is byte-identical to the
// pre-shard fabric.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "net/params.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/shard_runtime.h"
#include "sim/simulator.h"
#include "sim/sync.h"

namespace hpres::net {

/// Delivery wrapper handed to the receiving node's inbox.
template <typename Body>
struct Envelope {
  NodeId src = 0;
  NodeId dst = 0;
  SimTime sent_at = 0;
  SimTime delivered_at = 0;
  std::size_t wire_bytes = 0;
  Body body;
};

/// Aggregate transfer statistics (per fabric), both directions. Send and
/// receive sides are tracked independently so send/recv asymmetry under
/// injected failures is visible. Two conservation identities hold:
///   messages_sent == messages_delivered + messages_dropped + in flight
///   bytes_sent    == bytes_delivered + bytes_dropped + in-flight payload
/// (in_flight_bytes() counts wire bytes, i.e. payload + header; with
/// header_bytes == 0 the byte identity holds mid-flight too, and at
/// quiescence it holds for any header size).
struct FabricStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_dropped = 0;  ///< total drops (sum of causes below)
  std::uint64_t drops_dst_down = 0;    ///< destination HCA was down
  std::uint64_t drops_src_down = 0;    ///< sender itself was marked down
  std::uint64_t drops_injected = 0;    ///< seeded random loss (set_loss)
  std::uint64_t bytes_sent = 0;        ///< payload bytes accepted for send
  std::uint64_t bytes_dropped = 0;     ///< payload bytes of dropped messages
  std::uint64_t rendezvous_handshakes = 0;
  std::uint64_t messages_delivered = 0;  ///< landed in a destination inbox
  std::uint64_t bytes_delivered = 0;     ///< payload bytes delivered

  /// Registers every field into `reg` under component "fabric".
  void register_with(obs::MetricsRegistry& reg, std::string node,
                     std::string op = {}) const {
    const obs::MetricLabels labels{"fabric", std::move(node), std::move(op)};
    reg.bind_counter("fabric.messages_sent", labels, &messages_sent);
    reg.bind_counter("fabric.messages_dropped", labels, &messages_dropped);
    reg.bind_counter("fabric.drops_dst_down", labels, &drops_dst_down);
    reg.bind_counter("fabric.drops_src_down", labels, &drops_src_down);
    reg.bind_counter("fabric.drops_injected", labels, &drops_injected);
    reg.bind_counter("fabric.bytes_sent", labels, &bytes_sent);
    reg.bind_counter("fabric.bytes_dropped", labels, &bytes_dropped);
    reg.bind_counter("fabric.rendezvous_handshakes", labels,
                     &rendezvous_handshakes);
    reg.bind_counter("fabric.messages_delivered", labels,
                     &messages_delivered);
    reg.bind_counter("fabric.bytes_delivered", labels, &bytes_delivered);
  }

  void accumulate(const FabricStats& other) noexcept {
    messages_sent += other.messages_sent;
    messages_dropped += other.messages_dropped;
    drops_dst_down += other.drops_dst_down;
    drops_src_down += other.drops_src_down;
    drops_injected += other.drops_injected;
    bytes_sent += other.bytes_sent;
    bytes_dropped += other.bytes_dropped;
    rendezvous_handshakes += other.rendezvous_handshakes;
    messages_delivered += other.messages_delivered;
    bytes_delivered += other.bytes_delivered;
  }
};

template <typename Body>
class Fabric {
 public:
  /// Single-loop fabric: every node on one simulator (the deterministic
  /// oracle configuration, and the only constructor tests existed with
  /// before sharding).
  Fabric(sim::Simulator& sim, FabricParams params, std::size_t num_nodes)
      : params_(params), nics_(num_nodes) {
    node_sim_.assign(num_nodes, &sim);
    node_shard_.assign(num_nodes, 0);
    shard_state_.push_back(std::make_unique<ShardState>());
    init_inboxes();
  }

  /// Shard-aware fabric: node `i` lives on `runtime.shard(node_shard[i])`.
  /// With one shard this is exactly the oracle configuration above.
  Fabric(sim::ShardRuntime& runtime, FabricParams params,
         std::vector<std::uint32_t> node_shard)
      : params_(params),
        nics_(node_shard.size()),
        runtime_(&runtime),
        node_shard_(std::move(node_shard)) {
    node_sim_.reserve(node_shard_.size());
    for (const std::uint32_t s : node_shard_) {
      assert(s < runtime.num_shards());
      node_sim_.push_back(&runtime.shard(s));
    }
    for (std::size_t s = 0; s < runtime.num_shards(); ++s) {
      shard_state_.push_back(std::make_unique<ShardState>());
    }
    init_inboxes();
  }

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return inboxes_.size();
  }
  [[nodiscard]] const FabricParams& params() const noexcept { return params_; }

  /// Transfer counters. Single-shard fabrics return the live struct (the
  /// metrics registry binds its fields by pointer); multi-shard fabrics
  /// return the merged snapshot, refreshed by merge_stats() — the cluster
  /// refreshes it after every run, so bound pointers read current sums at
  /// capture time.
  [[nodiscard]] const FabricStats& stats() const noexcept {
    return shard_state_.size() == 1 ? shard_state_[0]->stats : merged_stats_;
  }

  /// Recomputes the merged multi-shard counter snapshot. Call at
  /// quiescence (between runs); a no-op for single-shard fabrics.
  void merge_stats() noexcept {
    if (shard_state_.size() == 1) return;
    merged_stats_ = FabricStats{};
    merged_in_flight_bytes_ = 0;
    merged_in_flight_messages_ = 0;
    for (const auto& st : shard_state_) {
      merged_stats_.accumulate(st->stats);
      merged_in_flight_bytes_ += st->in_flight_bytes;
      merged_in_flight_messages_ += st->in_flight_messages;
    }
  }

  /// Wire bytes sent but not yet delivered (time-series gauge for the
  /// periodic sampler; multi-shard values are snapshots from merge_stats).
  [[nodiscard]] std::uint64_t in_flight_bytes() const noexcept {
    return shard_state_.size() == 1 ? shard_state_[0]->in_flight_bytes
                                    : merged_in_flight_bytes_;
  }
  [[nodiscard]] std::uint64_t in_flight_messages() const noexcept {
    return shard_state_.size() == 1 ? shard_state_[0]->in_flight_messages
                                    : merged_in_flight_messages_;
  }
  /// Live in-flight wire bytes charged to shard `s` (single-writer; read
  /// it from that shard's thread or from a quiesce hook).
  [[nodiscard]] std::uint64_t in_flight_bytes_of_shard(
      std::size_t s) const noexcept {
    assert(s < shard_state_.size());
    return shard_state_[s]->in_flight_bytes;
  }

  /// Attaches a span tracer: NIC occupancy spans ("fabric/send" on the
  /// sender's NIC track, "fabric/recv" on the receiver's) are emitted under
  /// process `pid`. Pass nullptr to detach. Purely observational. Attaches
  /// the same tracer to every shard; parallel runs overwrite the per-shard
  /// slots with their own domains (set_shard_tracer) so each shard records
  /// single-writer.
  void set_tracer(obs::Tracer* tracer, std::uint32_t pid = 0) noexcept {
    for (auto& st : shard_state_) st->tracer = tracer;
    trace_pid_ = pid;
  }
  /// Points shard `s` at its own tracer domain (parallel runs only).
  void set_shard_tracer(std::size_t s, obs::Tracer* tracer) noexcept {
    assert(s < shard_state_.size());
    shard_state_[s]->tracer = tracer;
  }

  /// The receive queue for a node; server/client processes loop on
  /// `co_await fabric.inbox(id).recv()`. Owned by the node's shard.
  [[nodiscard]] sim::Channel<Envelope<Body>>& inbox(NodeId id) {
    assert(id < inboxes_.size());
    return *inboxes_[id];
  }

  /// The simulator that drives `id`'s events (its shard's event loop).
  [[nodiscard]] sim::Simulator& sim_of(NodeId id) {
    assert(id < node_sim_.size());
    return *node_sim_[id];
  }
  [[nodiscard]] std::uint32_t shard_of(NodeId id) const {
    assert(id < node_shard_.size());
    return node_shard_[id];
  }

  /// Marks a node up/down. Messages to or from a down node are dropped
  /// silently (its HCA is gone) — exactly what a crashed peer looks like on
  /// an RC transport. Senders survive this two ways (DESIGN.md failure
  /// model): requests in flight at crash time resolve through RPC deadlines
  /// (RpcPolicy timeouts), and later placement decisions consult the
  /// membership oracle once it observes the failure after the configured
  /// detection lag (FaultSchedule). Topology flags are read by every shard:
  /// mutate only in oracle mode, between runs, or from a quiesce hook.
  void set_node_up(NodeId id, bool up) {
    assert(id < nics_.size());
    nics_[id].up = up;
  }
  [[nodiscard]] bool node_up(NodeId id) const {
    assert(id < nics_.size());
    return nics_[id].up;
  }

  /// Enables seeded random message loss: each send is independently dropped
  /// with probability `probability` (counted under drops_injected). Models
  /// a flaky link for timeout/retry experiments; deterministic per seed.
  /// Pass 0 to disable (the default — no RNG draw on the send path).
  /// Each shard draws from its own stream (shard 0 keeps the seed's
  /// classic stream, so oracle runs are byte-identical to pre-shard code).
  void set_loss(double probability, std::uint64_t seed = 0x10553) {
    loss_probability_ = probability;
    for (std::size_t s = 0; s < shard_state_.size(); ++s) {
      shard_state_[s]->loss_rng =
          Xoshiro256(seed + s * 0x9E3779B97F4A7C15ULL);
    }
  }

  /// Per-node silent loss: messages to or from `id` are additionally
  /// dropped with probability `probability` — a gray-lossy NIC whose peers
  /// see timeouts while membership still says the node is alive. Shares
  /// the set_loss RNG stream; with every probability at 0 the send path
  /// draws no RNG at all, keeping loss-free runs bit-identical.
  void set_node_loss(NodeId id, double probability) {
    assert(id < nics_.size());
    if (nics_[id].loss > 0.0 && probability <= 0.0) --lossy_nodes_;
    if (nics_[id].loss <= 0.0 && probability > 0.0) ++lossy_nodes_;
    nics_[id].loss = probability;
  }
  [[nodiscard]] double node_loss(NodeId id) const {
    assert(id < nics_.size());
    return nics_[id].loss;
  }

  /// Attaches the health plane: every drop involving a tracked node feeds
  /// its drop counter. Purely observational. Attaches to every shard;
  /// parallel runs overwrite the slots with per-shard domains.
  void set_health_signals(obs::HealthSignals* signals) noexcept {
    for (auto& st : shard_state_) st->health = signals;
  }
  void set_shard_health_signals(std::size_t s,
                                obs::HealthSignals* signals) noexcept {
    assert(s < shard_state_.size());
    shard_state_[s]->health = signals;
  }
  /// Attaches the flight recorder: drops land in the involved server's
  /// ring as kNetDrop events. Purely observational. Attaches to every
  /// shard; parallel runs overwrite the slots with per-shard domains.
  void set_flight_recorder(obs::FlightRecorder* flight) noexcept {
    for (auto& st : shard_state_) st->flight = flight;
  }
  void set_shard_flight_recorder(std::size_t s,
                                 obs::FlightRecorder* flight) noexcept {
    assert(s < shard_state_.size());
    shard_state_[s]->flight = flight;
  }

  /// Asynchronously transfers `body` with `payload_bytes` of payload.
  /// Returns immediately; delivery lands in the destination inbox at the
  /// modeled time. Loopback (src == dst) skips the NIC entirely and
  /// delivers after a fixed small local latency. Must be called from the
  /// source node's shard (all senders are coroutines on their own shard).
  ///
  /// `trace` (optional, purely observational) tags the NIC spans with the
  /// causal trace id and emits one flow-event triple — "s" on the sender's
  /// enclosing slice (trace.span_id lane), "t" on the src NIC at tx start,
  /// "f" on the dst NIC at rx start — plus queue-wait and in-flight async
  /// spans, so Perfetto draws sender → fabric → receiver arrows and the
  /// critical-path analyzer sees queueing and wire time per message.
  void send(NodeId src, NodeId dst, Body body, std::size_t payload_bytes,
            const obs::TraceContext& trace = {}) {
    assert(src < nics_.size() && dst < nics_.size());
    ShardState& ss = *shard_state_[node_shard_[src]];
    sim::Simulator* ssim = node_sim_[src];
    obs::Tracer* tr =
        (ss.tracer != nullptr && ss.tracer->enabled()) ? ss.tracer : nullptr;
    ++ss.stats.messages_sent;
    ss.stats.bytes_sent += payload_bytes;
    if (!nics_[dst].up || !nics_[src].up) {
      ++ss.stats.messages_dropped;
      ss.stats.bytes_dropped += payload_bytes;
      if (!nics_[dst].up) {
        ++ss.stats.drops_dst_down;
      } else {
        ++ss.stats.drops_src_down;
      }
      record_drop(ss, src, dst, payload_bytes, /*injected=*/false);
      if (tr != nullptr && trace.valid()) {
        tr->instant(trace_pid_, trace.span_id, "fabric/drop", "fabric",
                    ssim->now(), trace.trace_id);
      }
      return;
    }
    // Injected loss: one combined-probability draw covers the global link
    // rate and both endpoints' gray-lossy rates, so the RNG stream advances
    // exactly once per at-risk message regardless of how many layers apply.
    if (loss_probability_ > 0.0 || lossy_nodes_ > 0) {
      const double keep = (1.0 - loss_probability_) *
                          (1.0 - nics_[src].loss) * (1.0 - nics_[dst].loss);
      if (keep < 1.0 && ss.loss_rng.next_double() >= keep) {
        ++ss.stats.messages_dropped;
        ++ss.stats.drops_injected;
        ss.stats.bytes_dropped += payload_bytes;
        record_drop(ss, src, dst, payload_bytes, /*injected=*/true);
        if (tr != nullptr && trace.valid()) {
          tr->instant(trace_pid_, trace.span_id, "fabric/drop", "fabric",
                      ssim->now(), trace.trace_id);
        }
        return;
      }
    }
    const SimTime now = ssim->now();
    Envelope<Body> env{src, dst, now, 0, payload_bytes + params_.header_bytes,
                       std::move(body)};

    if (src == dst) {
      env.delivered_at = now + kLoopbackNs;
      deliver_at(env.delivered_at, std::move(env));
      return;
    }

    SimDur pre_tx = 0;  // protocol work before the payload can move
    const bool rendezvous = payload_bytes >= params_.rendezvous_threshold;
    if (rendezvous) {
      // RTS/CTS control round trip before the zero-copy transfer.
      pre_tx += 2 * params_.latency_ns;
      ++ss.stats.rendezvous_handshakes;
    } else {
      // Eager: copy into pre-registered bounce buffers.
      pre_tx += static_cast<SimDur>(params_.eager_copy_ns_per_byte *
                                    static_cast<double>(payload_bytes));
    }

    const SimDur ser = params_.per_message_ns +
                       units::transfer_time_ns(env.wire_bytes,
                                               params_.bandwidth_gbps);
    // Sender NIC: queue behind earlier transmissions, then serialize.
    NicState& src_nic = nics_[src];
    const SimTime tx_start = std::max(now + pre_tx, src_nic.tx_busy_until);
    const SimTime tx_end = tx_start + ser;
    src_nic.tx_busy_until = tx_end;

    if (node_shard_[dst] != node_shard_[src]) {
      // Cross-shard: the first bit reaches the receiver at tx_start +
      // latency >= now + latency — at least one lookahead in the future,
      // which is exactly the window bound the runtime synchronizes on. The
      // receive NIC is claimed on its own shard at arrival time (arrival
      // order, where the oracle claims in send order — statistically
      // equivalent contention, not bit-identical across shard counts).
      // In-flight accounting for the wire leg starts at arrival on the
      // destination shard (receive_cross_shard): each shard's counters are
      // touched only by its own thread, which is what keeps this path free
      // of atomics and data races.
      //
      // Tracing splits at the same boundary: the sender's domain records
      // the tx-side spans and the 's'/'t' flow legs here; the receiver's
      // domain records the rx-side spans and the 'f' leg at arrival. The
      // flow/async ids ride the posted message, so the arrows join up after
      // the domains merge.
      std::uint64_t msg = 0;
      if (tr != nullptr) {
        tr->complete(trace_pid_, obs::Tracer::kNicTidBase + src,
                     "fabric/send", "fabric", tx_start, ser, trace.trace_id);
        if (trace.valid()) {
          msg = tr->new_flow_id();
          tr->flow('s', trace_pid_, trace.span_id, now, msg, trace.trace_id);
          tr->flow('t', trace_pid_, obs::Tracer::kNicTidBase + src, tx_start,
                   msg, trace.trace_id);
          const SimTime tx_ready = now + pre_tx;
          if (tx_start > tx_ready) {
            tr->async_span(trace_pid_, msg * 4, "fabric/txq", "fabric",
                           tx_ready, tx_start - tx_ready, trace.trace_id);
          }
        }
      }
      const SimTime arrival = tx_end + params_.latency_ns - ser;
      assert(runtime_ != nullptr);
      runtime_->post(
          node_shard_[src], node_shard_[dst], arrival,
          [this, ser, msg, tid = trace.trace_id,
           e = std::move(env)]() mutable {
            receive_cross_shard(std::move(e), ser, msg, tid);
          });
      return;
    }

    // Receiver NIC: the stream could start landing `ser` before its last
    // bit (cut-through); queue behind other arrivals.
    NicState& dst_nic = nics_[dst];
    const SimTime rx_start =
        std::max(tx_end + params_.latency_ns - ser, dst_nic.rx_busy_until);
    const SimTime rx_end = rx_start + ser;
    dst_nic.rx_busy_until = rx_end;

    if (tr != nullptr) {
      tr->complete(trace_pid_, obs::Tracer::kNicTidBase + src, "fabric/send",
                   "fabric", tx_start, ser, trace.trace_id);
      tr->complete(trace_pid_, obs::Tracer::kNicTidBase + dst, "fabric/recv",
                   "fabric", rx_start, ser, trace.trace_id);
      if (trace.valid()) {
        // Flow arrows: sender's slice → src NIC tx slice → dst NIC rx slice.
        const std::uint64_t msg = tr->new_flow_id();
        tr->flow('s', trace_pid_, trace.span_id, now, msg, trace.trace_id);
        tr->flow('t', trace_pid_, obs::Tracer::kNicTidBase + src, tx_start,
                 msg, trace.trace_id);
        tr->flow('f', trace_pid_, obs::Tracer::kNicTidBase + dst, rx_start,
                 msg, trace.trace_id);
        // Queue waits (overlap-safe async spans): tx behind earlier sends,
        // rx behind other arrivals converging on the destination (incast).
        const SimTime tx_ready = now + pre_tx;
        if (tx_start > tx_ready) {
          tr->async_span(trace_pid_, msg * 4, "fabric/txq", "fabric",
                         tx_ready, tx_start - tx_ready, trace.trace_id);
        }
        const SimTime rx_arrival = tx_end + params_.latency_ns - ser;
        if (rx_start > rx_arrival) {
          tr->async_span(trace_pid_, msg * 4 + 1, "fabric/rxq", "fabric",
                         rx_arrival, rx_start - rx_arrival, trace.trace_id);
        }
        // Whole in-flight interval (protocol pre-work through last bit
        // received): the analyzer's catch-all "net" coverage.
        tr->async_span(trace_pid_, msg * 4 + 2, "fabric/wire", "fabric", now,
                       rx_end - now, trace.trace_id);
      }
    }

    env.delivered_at = rx_end;
    deliver_at(rx_end, std::move(env));
  }

 private:
  static constexpr SimDur kLoopbackNs = 400;

  struct NicState {
    SimTime tx_busy_until = 0;
    SimTime rx_busy_until = 0;
    bool up = true;
    double loss = 0.0;  ///< per-node injected silent-loss probability
  };

  /// Shard-owned mutable fabric state: send-side counters and the loss RNG
  /// belong to the sending shard; delivery and in-flight counters to the
  /// receiving one. Every field is single-writer (only its shard's thread
  /// touches it); a cross-shard message charges in-flight from wire arrival
  /// to inbox delivery, so the merged gauges read zero at quiescence. The
  /// observability sinks are the shard's own domains in parallel runs (the
  /// shared instances in oracle mode), keeping recording single-writer too.
  struct ShardState {
    FabricStats stats;
    Xoshiro256 loss_rng;
    std::uint64_t in_flight_bytes = 0;
    std::uint64_t in_flight_messages = 0;
    obs::Tracer* tracer = nullptr;
    obs::HealthSignals* health = nullptr;
    obs::FlightRecorder* flight = nullptr;
  };

  void init_inboxes() {
    inboxes_.reserve(node_sim_.size());
    for (std::size_t i = 0; i < node_sim_.size(); ++i) {
      inboxes_.push_back(
          std::make_unique<sim::Channel<Envelope<Body>>>(*node_sim_[i]));
    }
  }

  /// Feeds a drop into the health plane. Health counters are sized to
  /// servers and attribute to whichever endpoint is one (the destination
  /// when both are; out-of-range ids bounce off the bounds checks). The
  /// flight event lands in the destination's ring with the source in `b`,
  /// so per-ring drop tallies stay attributable either way. Drops resolve
  /// on the send path, so both records go to the sender's shard domain
  /// (`ss`): a domain holds rings/counters for every node, only its writer
  /// is per-shard.
  void record_drop(ShardState& ss, NodeId src, NodeId dst,
                   std::size_t payload_bytes, bool injected) {
    if (ss.health != nullptr) {
      ss.health->on_drop(dst < ss.health->num_nodes() ? dst : src);
    }
    if (ss.flight != nullptr) {
      ss.flight->record(node_sim_[src]->now(), dst,
                        obs::FlightEventType::kNetDrop, payload_bytes,
                        static_cast<std::uint32_t>(src), injected ? 1 : 0);
    }
  }

  /// Runs on the destination shard at wire-arrival time: claims the
  /// receive NIC in arrival order, then delivers at serialization end.
  /// `msg` / `trace_id` carry the sender's flow identity (0 = untraced) so
  /// the rx-side spans land in this shard's tracer domain with matching
  /// ids.
  void receive_cross_shard(Envelope<Body> env, SimDur ser, std::uint64_t msg,
                           std::uint64_t trace_id) {
    sim::Simulator* dsim = node_sim_[env.dst];
    NicState& dst_nic = nics_[env.dst];
    const SimTime arrival = dsim->now();
    const SimTime rx_start = std::max(arrival, dst_nic.rx_busy_until);
    const SimTime rx_end = rx_start + ser;
    dst_nic.rx_busy_until = rx_end;
    env.delivered_at = rx_end;
    ShardState& rs = *shard_state_[node_shard_[env.dst]];
    if (obs::Tracer* tr =
            (rs.tracer != nullptr && rs.tracer->enabled()) ? rs.tracer
                                                           : nullptr;
        tr != nullptr) {
      tr->complete(trace_pid_, obs::Tracer::kNicTidBase + env.dst,
                   "fabric/recv", "fabric", rx_start, ser, trace_id);
      if (msg != 0) {
        tr->flow('f', trace_pid_, obs::Tracer::kNicTidBase + env.dst,
                 rx_start, msg, trace_id);
        if (rx_start > arrival) {
          tr->async_span(trace_pid_, msg * 4 + 1, "fabric/rxq", "fabric",
                         arrival, rx_start - arrival, trace_id);
        }
        // In-flight interval from original send to last bit received: the
        // sender stamped env.sent_at before protocol pre-work began.
        tr->async_span(trace_pid_, msg * 4 + 2, "fabric/wire", "fabric",
                       env.sent_at, rx_end - env.sent_at, trace_id);
      }
    }
    // The in-flight charge for a cross-shard message begins here, at wire
    // arrival, and is settled by deliver_coro — both on this (the
    // destination) shard's thread. The post->arrival wire leg is therefore
    // uncounted; gauges at quiescence still read zero, and per-shard
    // counters are single-writer by construction.
    rs.in_flight_bytes += env.wire_bytes;
    ++rs.in_flight_messages;
    dsim->spawn(deliver_coro(this, &rs, dsim, rx_end - dsim->now(),
                             std::move(env)));
  }

  [[nodiscard]] ShardState& ss_of(NodeId node) {
    return *shard_state_[node_shard_[node]];
  }

  void deliver_at(SimTime when, Envelope<Body> env) {
    sim::Simulator* dsim = node_sim_[env.dst];
    ShardState& st = ss_of(env.dst);
    const SimDur delay = when - dsim->now();
    st.in_flight_bytes += env.wire_bytes;
    ++st.in_flight_messages;
    dsim->spawn(deliver_coro(this, &st, dsim, delay, std::move(env)));
  }

  // Free coroutine per CP.51/CP.53: parameters by value / a raw pointer to
  // the fabric, which owns the inboxes and must outlive every in-flight
  // message (it does: the cluster drains the simulator before teardown).
  static sim::Task<void> deliver_coro(Fabric* self, ShardState* st,
                                      sim::Simulator* dsim, SimDur delay,
                                      Envelope<Body> env) {
    co_await dsim->delay(delay);
    st->in_flight_bytes -= env.wire_bytes;
    --st->in_flight_messages;
    ++st->stats.messages_delivered;
    st->stats.bytes_delivered += env.wire_bytes - self->params_.header_bytes;
    self->inboxes_[env.dst]->send(std::move(env));
  }

  FabricParams params_;
  std::vector<NicState> nics_;
  sim::ShardRuntime* runtime_ = nullptr;
  std::vector<std::uint32_t> node_shard_;
  std::vector<sim::Simulator*> node_sim_;
  std::vector<std::unique_ptr<ShardState>> shard_state_;
  FabricStats merged_stats_;
  std::uint64_t merged_in_flight_bytes_ = 0;
  std::uint64_t merged_in_flight_messages_ = 0;
  std::vector<std::unique_ptr<sim::Channel<Envelope<Body>>>> inboxes_;
  double loss_probability_ = 0.0;
  std::size_t lossy_nodes_ = 0;  ///< nodes with a nonzero per-node loss
  std::uint32_t trace_pid_ = 0;
};

}  // namespace hpres::net
