// Asynchronous Request Processing Engine (Section IV-A).
//
// Sits between the application-facing non-blocking API (iset/iget) and the
// resilience engine: new operations queue for admission against a tunable
// send/receive window and a pre-registered buffer pool; completions retire
// window slots. The window is what lets encode/decode of one operation
// overlap the request/response phases of its neighbours — the paper's core
// overlap mechanism.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "resilience/buffer_pool.h"
#include "sim/sync.h"

namespace hpres::resilience {

struct ArpeParams {
  std::uint32_t window = 64;    ///< max operations in flight
  std::uint32_t buffers = 256;  ///< pre-registered buffer pool size
};

struct ArpeStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t window_waits = 0;  ///< admissions that queued on the window
  std::uint64_t hedge_buffers = 0;  ///< spare buffers lent to hedge fetches
  std::uint64_t hedge_denials = 0;  ///< hedge borrow refused (pool tight)
  std::uint64_t commit_buffers = 0;  ///< buffers taken by group commits
  std::uint64_t commit_buffer_waits = 0;  ///< group commits that queued

  /// Registers every field into `reg` under component "arpe".
  void register_with(obs::MetricsRegistry& reg, std::string node,
                     std::string op = {}) const {
    const obs::MetricLabels labels{"arpe", std::move(node), std::move(op)};
    reg.bind_counter("arpe.submitted", labels, &submitted);
    reg.bind_counter("arpe.admitted", labels, &admitted);
    reg.bind_counter("arpe.window_waits", labels, &window_waits);
    reg.bind_counter("arpe.hedge_buffers", labels, &hedge_buffers);
    reg.bind_counter("arpe.hedge_denials", labels, &hedge_denials);
    reg.bind_counter("arpe.commit_buffers", labels, &commit_buffers);
    reg.bind_counter("arpe.commit_buffer_waits", labels,
                     &commit_buffer_waits);
  }
};

class Arpe {
 public:
  Arpe(sim::Simulator& sim, ArpeParams params)
      : sim_(&sim),
        window_(sim, params.window),
        buffers_(sim, params.buffers),
        idle_(sim),
        params_(params) {}

  [[nodiscard]] const ArpeParams& params() const noexcept { return params_; }
  /// Ops admitted through the window and not yet completed.
  [[nodiscard]] std::uint32_t in_flight() const noexcept { return in_flight_; }
  /// Ops submitted (queued or in flight) and not yet completed.
  [[nodiscard]] std::uint32_t pending() const noexcept { return pending_; }
  /// Pre-registered buffers currently held (time-series gauge).
  [[nodiscard]] std::uint32_t buffers_in_use() const noexcept {
    return buffers_.in_use();
  }
  [[nodiscard]] const ArpeStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const BufferPoolStats& buffer_stats() const noexcept {
    return buffers_.stats();
  }

  /// Attaches a span tracer: admissions that actually queue emit async
  /// "arpe/window_wait" / "arpe/buffer_wait" spans (they overlap freely, so
  /// they use b/e async events rather than complete events). Observational.
  void set_tracer(obs::Tracer* tracer, std::uint32_t pid = 0) noexcept {
    tracer_ = tracer;
    trace_pid_ = pid;
  }

  /// Records a submission into the request queue. Called synchronously at
  /// iset/iget time so that a wait_all issued immediately afterwards sees
  /// the op (REQ_QUEUE semantics).
  void submit() {
    ++stats_.submitted;
    ++pending_;
  }

  /// Admits one submitted operation: waits for a window slot and a buffer.
  sim::Task<void> admit() {
    const std::uint64_t seq = stats_.admitted++;
    if (!window_.try_acquire()) {
      ++stats_.window_waits;
      const SimTime t0 = sim_->now();
      co_await window_.acquire();
      trace_wait(2 * seq, "arpe/window_wait", t0);
    }
    {
      const SimTime t0 = sim_->now();
      co_await buffers_.acquire();
      trace_wait(2 * seq + 1, "arpe/buffer_wait", t0);
    }
    ++in_flight_;
  }

  /// Opportunistically borrows one registered buffer for a hedge fetch.
  /// The op's window slot already covers the extra in-flight request (the
  /// op itself is still one admitted unit of work); only the bounce buffer
  /// for the duplicate fragment is extra. Never blocks and never starves a
  /// queued admission — false means "don't hedge right now".
  [[nodiscard]] bool try_acquire_hedge_buffer() {
    if (!buffers_.try_acquire()) {
      ++stats_.hedge_denials;
      return false;
    }
    ++stats_.hedge_buffers;
    return true;
  }

  /// Returns a buffer borrowed by try_acquire_hedge_buffer.
  void release_hedge_buffer() { buffers_.release(); }

  /// Acquires one registered bounce buffer for a sealed stripe's group
  /// commit. Durability work may never be dropped, so this BLOCKS under
  /// exhaustion (unlike the hedge borrow) — and because a queued commit
  /// raises the pool's waiting count, BufferPool::try_acquire's no-steal
  /// rule guarantees no hedge can snatch a buffer ahead of it.
  sim::Task<void> acquire_commit_buffer() {
    ++stats_.commit_buffers;
    const SimTime t0 = sim_->now();
    const bool queued = buffers_.in_use() == buffers_.total();
    if (queued) ++stats_.commit_buffer_waits;
    co_await buffers_.acquire();
    if (queued) trace_wait(stats_.commit_buffers * 2 + 1'000'000,
                           "arpe/commit_buffer_wait", t0);
  }

  /// Returns a buffer taken by acquire_commit_buffer.
  void release_commit_buffer() { buffers_.release(); }

  /// Retires one operation (memcached completion notification).
  void complete() {
    --in_flight_;
    --pending_;
    buffers_.release();
    window_.release();
    if (pending_ == 0) idle_.notify_all();
  }

  /// memcached_wait-all: suspends until every submitted op has completed.
  sim::Task<void> drain() {
    while (pending_ > 0) co_await idle_.wait();
  }

 private:
  void trace_wait(std::uint64_t id, const char* name, SimTime t0) {
    if (tracer_ == nullptr || !tracer_->enabled()) return;
    const SimDur dur = sim_->now() - t0;
    if (dur <= 0) return;
    tracer_->async_span(trace_pid_, id, name, "arpe", t0, dur);
  }

  sim::Simulator* sim_;
  sim::Semaphore window_;
  BufferPool buffers_;
  sim::Condition idle_;
  ArpeParams params_;
  std::uint32_t in_flight_ = 0;
  std::uint32_t pending_ = 0;
  ArpeStats stats_;
  obs::Tracer* tracer_ = nullptr;
  std::uint32_t trace_pid_ = 0;
};

}  // namespace hpres::resilience
