// Asynchronous Request Processing Engine (Section IV-A).
//
// Sits between the application-facing non-blocking API (iset/iget) and the
// resilience engine: new operations queue for admission against a tunable
// send/receive window and a pre-registered buffer pool; completions retire
// window slots. The window is what lets encode/decode of one operation
// overlap the request/response phases of its neighbours — the paper's core
// overlap mechanism.
#pragma once

#include <cstdint>

#include "resilience/buffer_pool.h"
#include "sim/sync.h"

namespace hpres::resilience {

struct ArpeParams {
  std::uint32_t window = 64;    ///< max operations in flight
  std::uint32_t buffers = 256;  ///< pre-registered buffer pool size
};

struct ArpeStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t window_waits = 0;  ///< admissions that queued on the window
};

class Arpe {
 public:
  Arpe(sim::Simulator& sim, ArpeParams params)
      : window_(sim, params.window),
        buffers_(sim, params.buffers),
        idle_(sim),
        params_(params) {}

  [[nodiscard]] const ArpeParams& params() const noexcept { return params_; }
  /// Ops admitted through the window and not yet completed.
  [[nodiscard]] std::uint32_t in_flight() const noexcept { return in_flight_; }
  /// Ops submitted (queued or in flight) and not yet completed.
  [[nodiscard]] std::uint32_t pending() const noexcept { return pending_; }
  [[nodiscard]] const ArpeStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const BufferPoolStats& buffer_stats() const noexcept {
    return buffers_.stats();
  }

  /// Records a submission into the request queue. Called synchronously at
  /// iset/iget time so that a wait_all issued immediately afterwards sees
  /// the op (REQ_QUEUE semantics).
  void submit() {
    ++stats_.submitted;
    ++pending_;
  }

  /// Admits one submitted operation: waits for a window slot and a buffer.
  sim::Task<void> admit() {
    ++stats_.admitted;
    if (!window_.try_acquire()) {
      ++stats_.window_waits;
      co_await window_.acquire();
    }
    co_await buffers_.acquire();
    ++in_flight_;
  }

  /// Retires one operation (memcached completion notification).
  void complete() {
    --in_flight_;
    --pending_;
    buffers_.release();
    window_.release();
    if (pending_ == 0) idle_.notify_all();
  }

  /// memcached_wait-all: suspends until every submitted op has completed.
  sim::Task<void> drain() {
    while (pending_ > 0) co_await idle_.wait();
  }

 private:
  sim::Semaphore window_;
  BufferPool buffers_;
  sim::Condition idle_;
  ArpeParams params_;
  std::uint32_t in_flight_ = 0;
  std::uint32_t pending_ = 0;
  ArpeStats stats_;
};

}  // namespace hpres::resilience
