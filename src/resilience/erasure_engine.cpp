#include "resilience/erasure_engine.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "common/rng.h"

namespace hpres::resilience {

ErasureEngine::ErasureEngine(EngineContext ctx, const ec::Codec& codec,
                             ec::CostModel cost, EraMode mode,
                             ArpeParams arpe, HedgeParams hedge)
    : Engine(ctx, arpe),
      codec_(&codec),
      cost_(cost),
      mode_(mode),
      hedge_(hedge),
      load_(ctx.ring->num_servers(),
            splitmix64(static_cast<std::uint64_t>(ctx.client->id()))) {
  assert(codec.n() <= ring().num_servers() &&
         "need k+m distinct servers for fragment placement");
}

sim::Task<Status> ErasureEngine::do_set(kv::Key key, SharedBytes value,
                                        OpPhases* phases) {
  if (client_encodes(mode_)) {
    return set_client_encode(std::move(key), std::move(value), phases);
  }
  return set_server_encode(std::move(key), std::move(value), phases);
}

sim::Task<Result<Bytes>> ErasureEngine::do_get(kv::Key key,
                                               OpPhases* phases) {
  if (client_decodes(mode_)) {
    // Hedging / load-aware selection branches to a separate function so
    // the default path stays byte-exact (no extra state, no RNG draws).
    if (hedge_.enabled()) {
      return get_client_decode_hedged(std::move(key), phases);
    }
    return get_client_decode(std::move(key), phases);
  }
  return get_server_decode(std::move(key), phases);
}

sim::Task<Status> ErasureEngine::do_del(kv::Key key) {
  std::vector<sim::Future<kv::Response>> pending;
  pending.reserve(codec_->n() + 1);
  bool staged_sent = false;
  for (std::size_t slot = 0; slot < codec_->n(); ++slot) {
    const std::size_t owner = ring().slot_index(key, slot);
    if (!membership().up(owner)) continue;
    kv::Request frag;
    frag.verb = kv::Verb::kDelete;
    frag.key = kv::chunk_key(key, slot);
    pending.push_back(client().call_async(node_of(owner), std::move(frag)));
    if (!staged_sent) {
      // Clear any staged full copy left by a server-side encode. The
      // stager is the first owner that was live at Set time, so routing
      // this through the first live slot (not unconditionally slot 0)
      // reaches it even when slot 0's owner is down now.
      staged_sent = true;
      kv::Request staged;
      staged.verb = kv::Verb::kDelete;
      staged.key = key;
      pending.push_back(
          client().call_async(node_of(owner), std::move(staged)));
    }
  }
  std::size_t deleted = 0;
  for (const auto& f : pending) {
    const kv::Response resp = co_await f.wait();
    if (resp.code == StatusCode::kOk) ++deleted;
  }
  // Fragments on currently-down owners are out of reach; they become
  // orphans that the RepairCoordinator counts and purges.
  co_return deleted > 0 ? Status::Ok() : Status{StatusCode::kNotFound};
}

sim::Task<ErasureEngine::LiveSlot> ErasureEngine::pick_live_slot(
    kv::Key key) {
  LiveSlot result;
  for (std::size_t slot = 0; slot < codec_->n(); ++slot) {
    if (membership().up(ring().slot_index(key, slot))) {
      result.slot = slot;
      break;
    }
    result.degraded = true;
  }
  if (result.degraded) co_await sim().delay(membership().check_cost_ns());
  co_return result;
}

sim::Task<Status> ErasureEngine::set_client_encode(kv::Key key,
                                                   SharedBytes value,
                                                   OpPhases* phases) {
  const std::size_t value_size = value ? value->size() : 0;
  const std::size_t k = codec_->k();
  const std::size_t n = codec_->n();
  const ec::ChunkLayout layout =
      ec::make_layout(value_size, k, codec_->alignment());

  // T_encode plus the posting of all n chunk requests occupy the client
  // CPU as one contiguous slice — a single application thread encodes and
  // then posts its non-blocking sends back-to-back. (Splitting the slice
  // per send would let other in-flight operations' encodes starve this
  // op's sends behind the FIFO CPU queue.) Under the ARPE window this
  // slice overlaps the communication phases of neighbouring operations.
  const SimDur encode_ns = cost_.encode_ns(value_size);
  const SimDur post_ns =
      static_cast<SimDur>(n) *
      issue_cost(ec::make_layout(value_size, k, codec_->alignment())
                     .fragment_size);
  co_await client().cpu().execute(encode_ns + post_ns);
  phases->compute_ns += encode_ns;
  phases->request_ns += post_ns;
  obs::Tracer* const tr = tracer();
  if (tr != nullptr) {
    // Span durations equal the charged phase costs exactly, so the
    // tracer-derived breakdown matches the PhaseBreakdown accumulators.
    tr->complete(trace_pid(), phases->trace_tid, "set/encode", "engine",
                 sim().now() - encode_ns - post_ns, encode_ns,
                 phases->trace.trace_id);
    tr->complete(trace_pid(), phases->trace_tid, "set/request", "engine",
                 sim().now() - post_ns, post_ns, phases->trace.trace_id);
  }

  std::vector<SharedBytes> fragments;
  fragments.reserve(n);
  if (ctx().materialize && value) {
    std::vector<Bytes> data = ec::split_value(*value, layout);
    std::vector<ConstByteSpan> data_spans(data.begin(), data.end());
    std::vector<Bytes> parity(codec_->m(), Bytes(layout.fragment_size));
    std::vector<ByteSpan> parity_spans(parity.begin(), parity.end());
    codec_->encode(data_spans, parity_spans);
    for (auto& f : data) fragments.push_back(make_shared_bytes(std::move(f)));
    for (auto& p : parity) {
      fragments.push_back(make_shared_bytes(std::move(p)));
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      fragments.push_back(zero_bytes(layout.fragment_size));
    }
  }

  // Distribute all K+M fragments with non-blocking requests: the
  // response waits overlap, approaching Equation 7's max over fragments.
  std::vector<sim::Future<kv::Response>> pending;
  std::vector<std::size_t> pending_owners;
  pending.reserve(n);
  pending_owners.reserve(n);
  for (std::size_t slot = 0; slot < n; ++slot) {
    const std::size_t owner = ring().slot_index(key, slot);
    if (!membership().up(owner)) continue;
    kv::Request req;
    req.verb = kv::Verb::kSet;
    req.key = kv::chunk_key(key, slot);
    req.value = fragments[slot];
    req.chunk = kv::ChunkInfo{value_size, static_cast<std::uint32_t>(slot),
                              static_cast<std::uint16_t>(k),
                              static_cast<std::uint16_t>(codec_->m())};
    req.trace = phases->trace;
    pending.push_back(client().guarded_future(node_of(owner), std::move(req)));
    pending_owners.push_back(owner);
  }

  StatusCode worst = StatusCode::kOk;
  std::size_t stored = 0;
  const SimTime fanout_t0 = sim().now();
  for (std::size_t i = 0; i < pending.size(); ++i) {
    const kv::Response resp = co_await pending[i].wait();
    if (resp.code == StatusCode::kOk) {
      ++stored;
      // Passive load learning from the piggybacked queue depth; purely
      // observational (no events, no RNG), so timing is unchanged.
      load_.observe_rtt(pending_owners[i], sim().now() - fanout_t0,
                        resp.queue_depth);
    } else {
      worst = resp.code;
    }
  }
  if (tr != nullptr) {
    tr->complete(trace_pid(), phases->trace_tid, "set/fanout", "engine",
                 fanout_t0, sim().now() - fanout_t0, phases->trace.trace_id);
  }
  // Durability requires at least k fragments (any k reconstruct the value).
  if (stored < k) {
    co_return Status{StatusCode::kUnavailable,
                     "fewer than k fragments stored"};
  }
  co_return Status{worst};
}

sim::Task<Status> ErasureEngine::set_server_encode(kv::Key key,
                                                   SharedBytes value,
                                                   OpPhases* phases) {
  const LiveSlot ls = co_await pick_live_slot(key);
  if (ls.degraded) {
    ++stats().degraded_sets;
    phases->degraded = true;
  }
  if (!ls.slot) co_return Status{StatusCode::kUnavailable, "no live server"};
  const std::size_t target_index = ring().slot_index(key, *ls.slot);
  const net::NodeId target = node_of(target_index);

  kv::Request req;
  req.verb = kv::Verb::kSetEncode;
  req.key = std::move(key);
  req.value = std::move(value);
  req.trace = phases->trace;
  const SimDur issue_ns = issue_cost(req.value ? req.value->size() : 0);
  phases->request_ns += issue_ns;
  const SimTime t0 = sim().now();
  const kv::Response resp =
      co_await client().invoke(target, std::move(req));
  if (resp.code == StatusCode::kOk) {
    load_.observe_rtt(target_index, sim().now() - t0, resp.queue_depth);
  }
  if (obs::Tracer* const tr = tracer(); tr != nullptr) {
    tr->complete(trace_pid(), phases->trace_tid, "set/request", "engine", t0,
                 issue_ns, phases->trace.trace_id);
    tr->complete(trace_pid(), phases->trace_tid, "set/fanout", "engine",
                 t0 + issue_ns,
                 std::max<SimDur>(0, sim().now() - t0 - issue_ns),
                 phases->trace.trace_id);
  }
  co_return Status{resp.code};
}

sim::Task<Result<Bytes>> ErasureEngine::get_client_decode(kv::Key key,
                                                          OpPhases* phases) {
  const std::size_t k = codec_->k();
  const std::size_t n = codec_->n();

  // Select which fragments to fetch, codec-aware (an MDS code takes the
  // first k live owners, data slots first; LRC skips dependent rows).
  // Needing to work around a dead owner costs one T_check (Equation 4).
  std::vector<bool> available(n, false);
  bool degraded = false;
  for (std::size_t slot = 0; slot < n; ++slot) {
    if (membership().up(ring().slot_index(key, slot))) {
      available[slot] = true;
    } else {
      degraded = true;
    }
  }
  if (degraded) {
    ++stats().degraded_gets;
    phases->degraded = true;
    co_await sim().delay(membership().check_cost_ns());
  }
  Result<std::vector<std::size_t>> selected =
      codec_->select_read_set(available);
  if (!selected.ok()) co_return selected.status();
  std::vector<std::size_t> chosen = *selected;

  // K non-blocking fragment fetches posted back-to-back from one CPU
  // slice; the responses overlap (Equation 8).
  const SimDur post_ns =
      static_cast<SimDur>(k) * issue_cost(key.size() + 2);
  co_await client().cpu().execute(post_ns);
  phases->request_ns += post_ns;
  obs::Tracer* const tr = tracer();
  if (tr != nullptr) {
    tr->complete(trace_pid(), phases->trace_tid, "get/request", "engine",
                 sim().now() - post_ns, post_ns, phases->trace.trace_id);
  }

  // Failover fetch loop. Fragments are cached per slot across rounds: a
  // chosen fragment that fails (dead owner, RPC timeout, or a miss on a
  // live server) marks its slot unavailable, the read set is re-selected
  // over the survivors, and only the replacement fragments are fetched.
  // The Get therefore succeeds whenever any k live fragments exist,
  // regardless of which initially-chosen fragment failed.
  std::vector<SharedBytes> frag(n);
  std::vector<bool> have(n, false);
  std::optional<kv::ChunkInfo> meta;
  StatusCode worst = StatusCode::kNotFound;
  bool complete = false;
  std::size_t round = 0;
  const SimTime fetch_t0 = sim().now();
  for (;;) {
    std::vector<sim::Future<kv::Response>> pending;
    std::vector<std::size_t> pending_slots;
    pending.reserve(chosen.size());
    for (const std::size_t slot : chosen) {
      if (have[slot]) continue;
      if (round > 0) {
        ++stats().failover_fetches;
        if (flight() != nullptr) {
          flight()->record(sim().now(), node_of(ring().slot_index(key, slot)),
                           obs::FlightEventType::kFailover, 0,
                           static_cast<std::uint32_t>(client().id()));
        }
      }
      kv::Request req;
      req.verb = kv::Verb::kGet;
      req.key = kv::chunk_key(key, slot);
      req.trace = phases->trace;
      pending.push_back(client().guarded_future(
          node_of(ring().slot_index(key, slot)), std::move(req)));
      pending_slots.push_back(slot);
    }
    bool failure = false;
    const SimTime round_t0 = sim().now();
    for (std::size_t i = 0; i < pending.size(); ++i) {
      kv::Response resp = co_await pending[i].wait();
      const std::size_t slot = pending_slots[i];
      if (resp.code == StatusCode::kOk) {
        // Passive load learning (observation only: no events, no RNG).
        load_.observe_rtt(ring().slot_index(key, slot),
                          sim().now() - round_t0, resp.queue_depth);
        frag[slot] = std::move(resp.value);
        have[slot] = true;
        if (resp.chunk) meta = resp.chunk;
      } else {
        worst = resp.code;
        available[slot] = false;
        failure = true;
      }
    }
    if (!failure) {
      complete = true;
      break;
    }
    // Working around the failure is a degraded read even when the
    // membership oracle claimed every owner was up; re-selection pays
    // one more T_check.
    if (!degraded) {
      degraded = true;
      ++stats().degraded_gets;
    }
    phases->degraded = true;
    co_await sim().delay(membership().check_cost_ns());
    // Failover re-selection consults the per-node load scores (when the
    // tracker has learned any): before this, every retry round re-selected
    // from scratch in slot order and deterministically piled replacement
    // fetches onto the first survivor. Deterministic (no tie-breaking RNG
    // on this path): scores come only from observed responses.
    const std::vector<std::size_t> preference =
        load_preference(key, /*randomize=*/false, /*force=*/true);
    selected = preference.empty()
                   ? codec_->select_read_set(available)
                   : codec_->select_read_set_ordered(available, preference);
    if (!selected.ok()) break;  // not enough survivors: fall back / fail
    chosen = *selected;
    ++round;
  }
  if (tr != nullptr) {
    tr->complete(trace_pid(), phases->trace_tid, "get/fetch", "engine",
                 fetch_t0, sim().now() - fetch_t0, phases->trace.trace_id);
  }
  if (!complete || !meta) {
    if (!client_encodes(mode_)) {
      // Server-side encode may still be distributing this key's fragments;
      // the stager holds the full value until every fragment is acked, so
      // one server-side aggregate resolves the race (read-after-write).
      ++stats().fallback_gets;
      if (flight() != nullptr) {
        flight()->record(sim().now(), client().id(),
                         obs::FlightEventType::kFallback);
      }
      co_return co_await get_server_decode(std::move(key), phases);
    }
    co_return Status{worst, "missing fragments"};
  }

  const std::size_t value_size = meta->original_size;
  std::size_t missing_data = k;
  for (const std::size_t slot : chosen) {
    if (slot < k) --missing_data;
  }

  if (missing_data > 0) {
    // T_decode on the client CPU, only on the degraded path.
    const SimDur decode_ns =
        cost_.decode_ns(value_size, static_cast<unsigned>(missing_data));
    co_await client().cpu().execute(decode_ns);
    phases->compute_ns += decode_ns;
    if (tr != nullptr) {
      tr->complete(trace_pid(), phases->trace_tid, "get/decode", "engine",
                   sim().now() - decode_ns, decode_ns,
                   phases->trace.trace_id);
    }
  }

  const ec::ChunkLayout layout =
      ec::make_layout(value_size, k, codec_->alignment());
  if (!ctx().materialize) co_return Bytes(value_size);

  // Rebuild missing data fragments for real, then reassemble. Runs on the
  // engine-wide scratch (no co_await from here to join_fragments): fetched
  // fragments copy-assign into slots whose capacity persists across ops,
  // and absent slots are zero-filled in place for the reconstruct kernels.
  DecodeScratch& sc = scratch_;
  sc.storage.resize(n);
  sc.present.assign(n, false);
  for (const std::size_t slot : chosen) {
    if (!frag[slot]) continue;
    sc.storage[slot] = *frag[slot];
    sc.present[slot] = true;
  }
  for (std::size_t slot = 0; slot < n; ++slot) {
    if (!sc.present[slot]) {
      sc.storage[slot].assign(layout.fragment_size, std::byte{0});
    }
  }
  sc.spans.assign(sc.storage.begin(), sc.storage.end());
  if (missing_data > 0) {
    const Status s = codec_->reconstruct_data(sc.spans, sc.present);
    if (!s.ok()) co_return s;
  }
  std::vector<ConstByteSpan> data(
      sc.storage.begin(), sc.storage.begin() + static_cast<std::ptrdiff_t>(k));
  co_return ec::join_fragments(data, layout);
}

std::vector<std::size_t> ErasureEngine::load_preference(const kv::Key& key,
                                                        bool randomize,
                                                        bool force) {
  // Cold tracker: nothing learned, keep the deterministic natural order.
  // Without `force`, a preference is only produced when load-aware
  // selection was asked for.
  if ((!force && !hedge_.load_aware) || load_.total_samples() == 0) return {};
  const std::size_t n = codec_->n();
  std::vector<std::size_t> slots(n);
  std::iota(slots.begin(), slots.end(), std::size_t{0});
  std::vector<std::size_t> owners(n);
  for (std::size_t slot = 0; slot < n; ++slot) {
    owners[slot] = ring().slot_index(key, slot);
  }
  return load_.order_slots(slots, owners, randomize);
}

SimDur ErasureEngine::hedge_delay() const noexcept {
  SimDur d = hedge_.delay_ns;
  if (hedge_.delay_quantile > 0.0 && stats().get_latency.count() > 0) {
    d = std::max(d, stats().get_latency.quantile(hedge_.delay_quantile));
  }
  return d;
}

sim::Task<void> ErasureEngine::hedged_collector(
    ErasureEngine* self, std::shared_ptr<HedgeFetchState> st,
    std::size_t slot, bool is_hedge, sim::Future<kv::Response> fut,
    SimTime issued_at) {
  kv::Response resp = co_await fut.wait();
  if (is_hedge) self->arpe().release_hedge_buffer();
  st->rpc_of_slot[slot] = 0;
  --st->outstanding;
  if (resp.code == StatusCode::kOk) {
    self->load_.observe_rtt(st->owner[slot], self->sim().now() - issued_at,
                            resp.queue_depth);
    if (st->op_done) {
      // Arrived after the op already completed: fetched bytes were wasted.
      self->stats().hedge_wasted_bytes +=
          resp.value ? resp.value->size() : 0;
    } else {
      st->frag[slot] = std::move(resp.value);
      st->have[slot] = true;
      ++st->ok;
      if (resp.chunk) st->meta = resp.chunk;
    }
  } else if (resp.code != StatusCode::kCancelled) {
    st->worst = resp.code;
    st->available[slot] = false;
    st->failed_any = true;
  }
  st->progress.notify_all();
}

void ErasureEngine::issue_hedged_fetch(
    const kv::Key& key, const std::shared_ptr<HedgeFetchState>& st,
    std::size_t slot, bool is_hedge, const obs::TraceContext& trace) {
  st->attempted[slot] = true;
  if (is_hedge) st->hedge_slot[slot] = true;
  kv::Request req;
  req.verb = kv::Verb::kGet;
  req.key = kv::chunk_key(key, slot);
  req.trace = trace;
  sim::Future<kv::Response> fut =
      client().guarded_future(node_of(st->owner[slot]), std::move(req));
  // Remember the rpc id so stragglers can be cancel-resolved at op
  // completion — but only for plain unguarded calls: guarded calls resolve
  // themselves through their deadline, and a failed-fast call has id 0.
  if (client().policy().timeout_ns <= 0) {
    st->rpc_of_slot[slot] = client().last_call_id();
  }
  ++st->outstanding;
  sim().spawn(hedged_collector(this, st, slot, is_hedge, std::move(fut),
                               sim().now()));
}

sim::Task<void> ErasureEngine::hedge_firer(
    ErasureEngine* self, kv::Key key, std::shared_ptr<HedgeFetchState> st,
    std::vector<std::size_t> hedge_slots, obs::TraceContext trace,
    std::uint64_t trace_tid) {
  const std::size_t k = self->codec_->k();
  const SimDur delay = self->hedge_delay();
  if (delay > 0) co_await self->sim().delay(delay);
  bool fired = false;
  for (const std::size_t slot : hedge_slots) {
    // Late binding: a hedge only fires while the op is still short of k
    // arrivals and its target slot has not failed meanwhile.
    if (st->op_done || st->ok >= k) break;
    if (st->attempted[slot] || !st->available[slot]) continue;
    if (!self->arpe().try_acquire_hedge_buffer()) {
      // Pool tight: hedging is best-effort and must never add
      // backpressure to admitted work.
      ++self->stats().hedges_suppressed;
      break;
    }
    // The duplicate request costs real client CPU — that is the p50 price
    // of hedging and must show up in the schedule.
    co_await self->client().cpu().execute(
        self->issue_cost(key.size() + 2));
    if (st->op_done || st->ok >= k) {  // op finished while queued on CPU
      self->arpe().release_hedge_buffer();
      break;
    }
    ++self->stats().hedges_fired;
    fired = true;
    if (obs::Tracer* const tr = self->tracer(); tr != nullptr) {
      tr->instant(self->trace_pid(), trace_tid, "hedge/fire", "engine",
                  self->sim().now(), trace.trace_id);
    }
    if (obs::FlightRecorder* const fl = self->flight(); fl != nullptr) {
      fl->record(self->sim().now(), self->node_of(st->owner[slot]),
                 obs::FlightEventType::kHedgeFired, 0,
                 static_cast<std::uint32_t>(self->client().id()));
    }
    self->issue_hedged_fetch(key, st, slot, true, trace);
  }
  if (fired) ++self->stats().hedged_gets;
}

sim::Task<Result<Bytes>> ErasureEngine::get_client_decode_hedged(
    kv::Key key, OpPhases* phases) {
  const std::size_t k = codec_->k();
  const std::size_t n = codec_->n();

  auto st = std::make_shared<HedgeFetchState>(sim(), n);
  bool degraded = false;
  for (std::size_t slot = 0; slot < n; ++slot) {
    st->owner[slot] = ring().slot_index(key, slot);
    if (membership().up(st->owner[slot])) {
      st->available[slot] = true;
    } else {
      degraded = true;
    }
  }
  if (degraded) {
    ++stats().degraded_gets;
    phases->degraded = true;
    co_await sim().delay(membership().check_cost_ns());
  }

  // Load-ranked candidate order (power-of-two-choices among near-equal
  // scores); natural order while the tracker is cold or load-aware
  // selection is off.
  std::vector<std::size_t> preference =
      load_preference(key, /*randomize=*/hedge_.load_aware,
                      /*force=*/false);
  Result<std::vector<std::size_t>> selected =
      preference.empty()
          ? codec_->select_read_set(st->available)
          : codec_->select_read_set_ordered(st->available, preference);
  if (!selected.ok()) co_return selected.status();

  // K non-blocking fragment fetches posted back-to-back from one CPU
  // slice (Equation 8), exactly like the unhedged path.
  const SimDur post_ns =
      static_cast<SimDur>(k) * issue_cost(key.size() + 2);
  co_await client().cpu().execute(post_ns);
  phases->request_ns += post_ns;
  obs::Tracer* const tr = tracer();
  if (tr != nullptr) {
    tr->complete(trace_pid(), phases->trace_tid, "get/request", "engine",
                 sim().now() - post_ns, post_ns, phases->trace.trace_id);
  }

  const SimTime fetch_t0 = sim().now();
  for (const std::size_t slot : *selected) {
    issue_hedged_fetch(key, st, slot, false, phases->trace);
  }

  // Queue up to Δ hedges over the next-best candidates, fired after the
  // hedge delay if the op is still short of k arrivals.
  if (hedge_.delta > 0) {
    std::vector<std::size_t> hedge_slots;
    const std::vector<std::size_t> pool =
        preference.empty()
            ? [n] {
                std::vector<std::size_t> natural(n);
                std::iota(natural.begin(), natural.end(), std::size_t{0});
                return natural;
              }()
            : preference;
    for (const std::size_t slot : pool) {
      if (hedge_slots.size() >= hedge_.delta) break;
      if (!st->attempted[slot] && st->available[slot]) {
        hedge_slots.push_back(slot);
      }
    }
    if (!hedge_slots.empty()) {
      sim().spawn(hedge_firer(this, key, st, std::move(hedge_slots),
                              phases->trace, phases->trace_tid));
    }
  }

  // Late-binding wait: complete on the first k decodable arrivals,
  // failing over (load-aware) when fetches die.
  bool complete = false;
  std::vector<std::size_t> decode_set;
  for (;;) {
    if (st->ok >= k) {
      Result<std::vector<std::size_t>> fin =
          codec_->select_read_set(st->have);
      if (fin.ok()) {
        decode_set = *fin;
        complete = true;
        break;
      }
    }
    if (st->failed_any) {
      st->failed_any = false;
      if (!degraded) {
        degraded = true;
        ++stats().degraded_gets;
      }
      phases->degraded = true;
      co_await sim().delay(membership().check_cost_ns());
      // Failover re-selection consults the same load scores as the
      // initial choice, so repeated retries spread over the survivors
      // instead of piling onto the first one.
      preference = load_preference(key, /*randomize=*/hedge_.load_aware,
                                   /*force=*/true);
      Result<std::vector<std::size_t>> resel =
          preference.empty()
              ? codec_->select_read_set(st->available)
              : codec_->select_read_set_ordered(st->available, preference);
      if (resel.ok()) {
        for (const std::size_t slot : *resel) {
          if (st->attempted[slot] || st->have[slot]) continue;
          ++stats().failover_fetches;
          if (flight() != nullptr) {
            flight()->record(sim().now(), node_of(st->owner[slot]),
                             obs::FlightEventType::kFailover, 0,
                             static_cast<std::uint32_t>(client().id()));
          }
          issue_hedged_fetch(key, st, slot, false, phases->trace);
        }
      } else if (st->outstanding == 0) {
        break;  // not enough survivors and nothing in flight
      }
      continue;
    }
    if (st->outstanding == 0) break;
    co_await st->progress.wait();
  }

  // Bind the result: everything still in flight is a straggler. Cancel
  // through the stale-response machinery and resolve the futures so the
  // collectors unwind instead of leaking parked until process exit.
  st->op_done = true;
  std::size_t cancelled = 0;
  for (std::size_t slot = 0; slot < n; ++slot) {
    const std::uint64_t rpc_id = st->rpc_of_slot[slot];
    if (rpc_id == 0) continue;
    ++cancelled;
    client().cancel_resolve(rpc_id);
  }
  if (st->meta != std::nullopt && cancelled > 0) {
    // A cancelled fetch's response (in flight or about to be produced) is
    // one fragment of wasted wire work.
    stats().hedge_wasted_bytes +=
        cancelled * ec::make_layout(st->meta->original_size, k,
                                    codec_->alignment())
                        .fragment_size;
  }
  if (complete) {
    for (const std::size_t slot : decode_set) {
      if (st->hedge_slot[slot]) {
        ++stats().hedge_wins;
        if (flight() != nullptr) {
          flight()->record(sim().now(), node_of(st->owner[slot]),
                           obs::FlightEventType::kHedgeWon, 0,
                           static_cast<std::uint32_t>(client().id()));
        }
      }
    }
    for (std::size_t slot = 0; slot < n; ++slot) {
      if (!st->have[slot]) continue;
      if (std::find(decode_set.begin(), decode_set.end(), slot) ==
          decode_set.end()) {
        stats().hedge_wasted_bytes +=
            st->frag[slot] ? st->frag[slot]->size() : 0;
      }
    }
  }
  if (tr != nullptr) {
    tr->complete(trace_pid(), phases->trace_tid, "get/fetch", "engine",
                 fetch_t0, sim().now() - fetch_t0, phases->trace.trace_id);
  }
  if (!complete || !st->meta) {
    if (!client_encodes(mode_)) {
      // Server-side encode may still be distributing this key's fragments;
      // the stager resolves the race (read-after-write) — see
      // get_client_decode.
      ++stats().fallback_gets;
      if (flight() != nullptr) {
        flight()->record(sim().now(), client().id(),
                         obs::FlightEventType::kFallback);
      }
      co_return co_await get_server_decode(std::move(key), phases);
    }
    co_return Status{st->worst, "missing fragments"};
  }

  const std::size_t value_size = st->meta->original_size;
  std::size_t missing_data = k;
  for (const std::size_t slot : decode_set) {
    if (slot < k) --missing_data;
  }

  if (missing_data > 0) {
    const SimDur decode_ns =
        cost_.decode_ns(value_size, static_cast<unsigned>(missing_data));
    co_await client().cpu().execute(decode_ns);
    phases->compute_ns += decode_ns;
    if (tr != nullptr) {
      tr->complete(trace_pid(), phases->trace_tid, "get/decode", "engine",
                   sim().now() - decode_ns, decode_ns,
                   phases->trace.trace_id);
    }
  }

  const ec::ChunkLayout layout =
      ec::make_layout(value_size, k, codec_->alignment());
  if (!ctx().materialize) co_return Bytes(value_size);

  // Same engine-wide scratch as the unhedged path; the fill-and-consume
  // region below is synchronous (no co_await), so it is race-free.
  DecodeScratch& sc = scratch_;
  sc.storage.resize(n);
  sc.present.assign(n, false);
  for (const std::size_t slot : decode_set) {
    if (!st->frag[slot]) continue;
    sc.storage[slot] = *st->frag[slot];
    sc.present[slot] = true;
  }
  for (std::size_t slot = 0; slot < n; ++slot) {
    if (!sc.present[slot]) {
      sc.storage[slot].assign(layout.fragment_size, std::byte{0});
    }
  }
  sc.spans.assign(sc.storage.begin(), sc.storage.end());
  if (missing_data > 0) {
    const Status s = codec_->reconstruct_data(sc.spans, sc.present);
    if (!s.ok()) co_return s;
  }
  std::vector<ConstByteSpan> data(
      sc.storage.begin(), sc.storage.begin() + static_cast<std::ptrdiff_t>(k));
  co_return ec::join_fragments(data, layout);
}

sim::Task<Result<Bytes>> ErasureEngine::get_server_decode(kv::Key key,
                                                          OpPhases* phases) {
  const LiveSlot ls = co_await pick_live_slot(key);
  if (ls.degraded) {
    ++stats().degraded_gets;
    phases->degraded = true;
  }
  if (!ls.slot) {
    co_return Status{StatusCode::kUnavailable, "no live server"};
  }
  const std::size_t target_index = ring().slot_index(key, *ls.slot);
  const net::NodeId target = node_of(target_index);

  kv::Request req;
  req.verb = kv::Verb::kGetDecode;
  req.key = std::move(key);
  req.trace = phases->trace;
  const SimDur issue_ns = issue_cost(req.key.size());
  phases->request_ns += issue_ns;
  const SimTime t0 = sim().now();
  kv::Response resp = co_await client().invoke(target, std::move(req));
  if (resp.code == StatusCode::kOk) {
    load_.observe_rtt(target_index, sim().now() - t0, resp.queue_depth);
  }
  if (obs::Tracer* const tr = tracer(); tr != nullptr) {
    tr->complete(trace_pid(), phases->trace_tid, "get/request", "engine", t0,
                 issue_ns, phases->trace.trace_id);
    tr->complete(trace_pid(), phases->trace_tid, "get/fetch", "engine",
                 t0 + issue_ns,
                 std::max<SimDur>(0, sim().now() - t0 - issue_ns),
                 phases->trace.trace_id);
  }
  if (resp.code != StatusCode::kOk) co_return Status{resp.code};
  co_return resp.value ? Bytes(*resp.value) : Bytes{};
}

}  // namespace hpres::resilience
