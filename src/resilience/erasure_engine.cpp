#include "resilience/erasure_engine.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "common/rng.h"

namespace hpres::resilience {

ErasureEngine::ErasureEngine(EngineContext ctx, const ec::Codec& codec,
                             ec::CostModel cost, EraMode mode,
                             ArpeParams arpe, HedgeParams hedge,
                             PackParams pack)
    : Engine(ctx, arpe),
      codec_(&codec),
      cost_(cost),
      mode_(mode),
      hedge_(hedge),
      pack_(pack),
      load_(ctx.ring->num_servers(),
            splitmix64(static_cast<std::uint64_t>(ctx.client->id()))) {
  assert(codec.n() <= ring().num_servers() &&
         "need k+m distinct servers for fragment placement");
}

sim::Task<Status> ErasureEngine::do_set(kv::Key key, SharedBytes value,
                                        OpPhases* phases) {
  if (packing_active()) {
    return set_routed_packed(std::move(key), std::move(value), phases);
  }
  if (client_encodes(mode_)) {
    return set_client_encode(std::move(key), std::move(value), phases);
  }
  return set_server_encode(std::move(key), std::move(value), phases);
}

sim::Task<Result<Bytes>> ErasureEngine::do_get(kv::Key key,
                                               OpPhases* phases) {
  if (client_decodes(mode_)) {
    // Packing first (it falls back to the legacy paths below for keys
    // without a locator), then hedging; the default path stays byte-exact
    // (no extra state, no RNG draws).
    if (packing_active()) {
      return get_packed(std::move(key), phases);
    }
    if (hedge_.enabled()) {
      return get_client_decode_hedged(std::move(key), phases);
    }
    return get_client_decode(std::move(key), phases);
  }
  return get_server_decode(std::move(key), phases);
}

sim::Task<Status> ErasureEngine::do_del(kv::Key key) {
  std::vector<sim::Future<kv::Response>> pending;
  pending.reserve(codec_->n() + 1);
  if (packing_active()) {
    // Forget any staged (pre-durability) copy — the commit-time filter
    // then drops the record's locator install — and unlink committed
    // locator entries at the directory owners.
    staging_.erase(key);
    co_await unlink_locator(key, &pending);
  }
  bool staged_sent = false;
  for (std::size_t slot = 0; slot < codec_->n(); ++slot) {
    const std::size_t owner = ring().slot_index(key, slot);
    if (!membership().up(owner)) continue;
    kv::Request frag;
    frag.verb = kv::Verb::kDelete;
    frag.key = kv::chunk_key(key, slot);
    pending.push_back(client().call_async(node_of(owner), std::move(frag)));
    if (!staged_sent) {
      // Clear any staged full copy left by a server-side encode. The
      // stager is the first owner that was live at Set time, so routing
      // this through the first live slot (not unconditionally slot 0)
      // reaches it even when slot 0's owner is down now.
      staged_sent = true;
      kv::Request staged;
      staged.verb = kv::Verb::kDelete;
      staged.key = key;
      pending.push_back(
          client().call_async(node_of(owner), std::move(staged)));
    }
  }
  std::size_t deleted = 0;
  for (const auto& f : pending) {
    const kv::Response resp = co_await f.wait();
    if (resp.code == StatusCode::kOk) ++deleted;
  }
  // Fragments on currently-down owners are out of reach; they become
  // orphans that the RepairCoordinator counts and purges.
  co_return deleted > 0 ? Status::Ok() : Status{StatusCode::kNotFound};
}

sim::Task<ErasureEngine::LiveSlot> ErasureEngine::pick_live_slot(
    kv::Key key) {
  LiveSlot result;
  for (std::size_t slot = 0; slot < codec_->n(); ++slot) {
    if (membership().up(ring().slot_index(key, slot))) {
      result.slot = slot;
      break;
    }
    result.degraded = true;
  }
  if (result.degraded) co_await sim().delay(membership().check_cost_ns());
  co_return result;
}

sim::Task<Status> ErasureEngine::set_client_encode(kv::Key key,
                                                   SharedBytes value,
                                                   OpPhases* phases) {
  const std::size_t value_size = value ? value->size() : 0;
  const std::size_t k = codec_->k();
  const std::size_t n = codec_->n();
  const ec::ChunkLayout layout =
      ec::make_layout(value_size, k, codec_->alignment());

  // T_encode plus the posting of all n chunk requests occupy the client
  // CPU as one contiguous slice — a single application thread encodes and
  // then posts its non-blocking sends back-to-back. (Splitting the slice
  // per send would let other in-flight operations' encodes starve this
  // op's sends behind the FIFO CPU queue.) Under the ARPE window this
  // slice overlaps the communication phases of neighbouring operations.
  const SimDur encode_ns = cost_.encode_ns(value_size);
  const SimDur post_ns =
      static_cast<SimDur>(n) *
      issue_cost(ec::make_layout(value_size, k, codec_->alignment())
                     .fragment_size);
  co_await client().cpu().execute(encode_ns + post_ns);
  phases->compute_ns += encode_ns;
  phases->request_ns += post_ns;
  obs::Tracer* const tr = tracer();
  if (tr != nullptr) {
    // Span durations equal the charged phase costs exactly, so the
    // tracer-derived breakdown matches the PhaseBreakdown accumulators.
    tr->complete(trace_pid(), phases->trace_tid, "set/encode", "engine",
                 sim().now() - encode_ns - post_ns, encode_ns,
                 phases->trace.trace_id);
    tr->complete(trace_pid(), phases->trace_tid, "set/request", "engine",
                 sim().now() - post_ns, post_ns, phases->trace.trace_id);
  }

  std::vector<SharedBytes> fragments;
  fragments.reserve(n);
  if (ctx().materialize && value) {
    std::vector<Bytes> data = ec::split_value(*value, layout);
    std::vector<ConstByteSpan> data_spans(data.begin(), data.end());
    std::vector<Bytes> parity(codec_->m(), Bytes(layout.fragment_size));
    std::vector<ByteSpan> parity_spans(parity.begin(), parity.end());
    codec_->encode(data_spans, parity_spans);
    for (auto& f : data) fragments.push_back(make_shared_bytes(std::move(f)));
    for (auto& p : parity) {
      fragments.push_back(make_shared_bytes(std::move(p)));
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      fragments.push_back(zero_bytes(layout.fragment_size));
    }
  }

  // Distribute all K+M fragments with non-blocking requests: the
  // response waits overlap, approaching Equation 7's max over fragments.
  std::vector<sim::Future<kv::Response>> pending;
  std::vector<std::size_t> pending_owners;
  pending.reserve(n);
  pending_owners.reserve(n);
  for (std::size_t slot = 0; slot < n; ++slot) {
    const std::size_t owner = ring().slot_index(key, slot);
    if (!membership().up(owner)) continue;
    kv::Request req;
    req.verb = kv::Verb::kSet;
    req.key = kv::chunk_key(key, slot);
    req.value = fragments[slot];
    req.chunk = kv::ChunkInfo{value_size, static_cast<std::uint32_t>(slot),
                              static_cast<std::uint16_t>(k),
                              static_cast<std::uint16_t>(codec_->m())};
    req.trace = phases->trace;
    pending.push_back(client().guarded_future(node_of(owner), std::move(req)));
    pending_owners.push_back(owner);
  }

  StatusCode worst = StatusCode::kOk;
  std::size_t stored = 0;
  bool bounced = false;
  const SimTime fanout_t0 = sim().now();
  for (std::size_t i = 0; i < pending.size(); ++i) {
    const kv::Response resp = co_await pending[i].wait();
    if (resp.code == StatusCode::kOk) {
      ++stored;
      // Passive load learning from the piggybacked queue depth; purely
      // observational (no events, no RNG), so timing is unchanged.
      load_.observe_rtt(pending_owners[i], sim().now() - fanout_t0,
                        resp.queue_depth);
    } else {
      worst = resp.code;
      if (resp.code == StatusCode::kWrongEpoch) bounced = true;
    }
  }
  if (tr != nullptr) {
    tr->complete(trace_pid(), phases->trace_tid, "set/fanout", "engine",
                 fanout_t0, sim().now() - fanout_t0, phases->trace.trace_id);
  }
  // A stale-epoch bounce outranks the durability verdict: the whole op
  // re-runs under the refreshed ring (Engine::set_impl), re-placing every
  // fragment, so partial old-ring placements never count as stored.
  if (bounced) {
    co_return Status{StatusCode::kWrongEpoch, "stale placement epoch"};
  }
  // Durability requires at least k fragments (any k reconstruct the value).
  if (stored < k) {
    co_return Status{StatusCode::kUnavailable,
                     "fewer than k fragments stored"};
  }
  co_return Status{worst};
}

sim::Task<Status> ErasureEngine::set_server_encode(kv::Key key,
                                                   SharedBytes value,
                                                   OpPhases* phases) {
  const LiveSlot ls = co_await pick_live_slot(key);
  if (ls.degraded) {
    ++stats().degraded_sets;
    phases->degraded = true;
  }
  if (!ls.slot) co_return Status{StatusCode::kUnavailable, "no live server"};
  const std::size_t target_index = ring().slot_index(key, *ls.slot);
  const net::NodeId target = node_of(target_index);

  kv::Request req;
  req.verb = kv::Verb::kSetEncode;
  req.key = std::move(key);
  req.value = std::move(value);
  req.trace = phases->trace;
  const SimDur issue_ns = issue_cost(req.value ? req.value->size() : 0);
  phases->request_ns += issue_ns;
  const SimTime t0 = sim().now();
  const kv::Response resp =
      co_await client().invoke(target, std::move(req));
  if (resp.code == StatusCode::kOk) {
    load_.observe_rtt(target_index, sim().now() - t0, resp.queue_depth);
  }
  if (obs::Tracer* const tr = tracer(); tr != nullptr) {
    tr->complete(trace_pid(), phases->trace_tid, "set/request", "engine", t0,
                 issue_ns, phases->trace.trace_id);
    tr->complete(trace_pid(), phases->trace_tid, "set/fanout", "engine",
                 t0 + issue_ns,
                 std::max<SimDur>(0, sim().now() - t0 - issue_ns),
                 phases->trace.trace_id);
  }
  co_return Status{resp.code};
}

sim::Task<Result<Bytes>> ErasureEngine::get_client_decode(kv::Key key,
                                                          OpPhases* phases) {
  const std::size_t k = codec_->k();
  const std::size_t n = codec_->n();

  // Select which fragments to fetch, codec-aware (an MDS code takes the
  // first k live owners, data slots first; LRC skips dependent rows).
  // Needing to work around a dead owner costs one T_check (Equation 4).
  std::vector<bool> available(n, false);
  bool degraded = false;
  for (std::size_t slot = 0; slot < n; ++slot) {
    if (membership().up(ring().slot_index(key, slot))) {
      available[slot] = true;
    } else {
      degraded = true;
    }
  }
  if (degraded) {
    ++stats().degraded_gets;
    phases->degraded = true;
    co_await sim().delay(membership().check_cost_ns());
  }
  Result<std::vector<std::size_t>> selected =
      codec_->select_read_set(available);
  if (!selected.ok()) co_return selected.status();
  std::vector<std::size_t> chosen = *selected;

  // K non-blocking fragment fetches posted back-to-back from one CPU
  // slice; the responses overlap (Equation 8).
  const SimDur post_ns =
      static_cast<SimDur>(k) * issue_cost(key.size() + 2);
  co_await client().cpu().execute(post_ns);
  phases->request_ns += post_ns;
  obs::Tracer* const tr = tracer();
  if (tr != nullptr) {
    tr->complete(trace_pid(), phases->trace_tid, "get/request", "engine",
                 sim().now() - post_ns, post_ns, phases->trace.trace_id);
  }

  // Failover fetch loop. Fragments are cached per slot across rounds: a
  // chosen fragment that fails (dead owner, RPC timeout, or a miss on a
  // live server) marks its slot unavailable, the read set is re-selected
  // over the survivors, and only the replacement fragments are fetched.
  // The Get therefore succeeds whenever any k live fragments exist,
  // regardless of which initially-chosen fragment failed.
  std::vector<SharedBytes> frag(n);
  std::vector<bool> have(n, false);
  std::optional<kv::ChunkInfo> meta;
  StatusCode worst = StatusCode::kNotFound;
  bool complete = false;
  std::size_t round = 0;
  const SimTime fetch_t0 = sim().now();
  for (;;) {
    std::vector<sim::Future<kv::Response>> pending;
    std::vector<std::size_t> pending_slots;
    pending.reserve(chosen.size());
    for (const std::size_t slot : chosen) {
      if (have[slot]) continue;
      if (round > 0) {
        ++stats().failover_fetches;
        if (flight() != nullptr) {
          flight()->record(sim().now(), node_of(ring().slot_index(key, slot)),
                           obs::FlightEventType::kFailover, 0,
                           static_cast<std::uint32_t>(client().id()));
        }
      }
      kv::Request req;
      req.verb = kv::Verb::kGet;
      req.key = kv::chunk_key(key, slot);
      req.trace = phases->trace;
      pending.push_back(client().guarded_future(
          node_of(ring().slot_index(key, slot)), std::move(req)));
      pending_slots.push_back(slot);
    }
    bool failure = false;
    const SimTime round_t0 = sim().now();
    for (std::size_t i = 0; i < pending.size(); ++i) {
      kv::Response resp = co_await pending[i].wait();
      const std::size_t slot = pending_slots[i];
      if (resp.code == StatusCode::kOk) {
        // Passive load learning (observation only: no events, no RNG).
        load_.observe_rtt(ring().slot_index(key, slot),
                          sim().now() - round_t0, resp.queue_depth);
        frag[slot] = std::move(resp.value);
        have[slot] = true;
        if (resp.chunk) meta = resp.chunk;
      } else {
        worst = resp.code;
        available[slot] = false;
        failure = true;
      }
    }
    if (!failure) {
      complete = true;
      break;
    }
    // Working around the failure is a degraded read even when the
    // membership oracle claimed every owner was up; re-selection pays
    // one more T_check.
    if (!degraded) {
      degraded = true;
      ++stats().degraded_gets;
    }
    phases->degraded = true;
    co_await sim().delay(membership().check_cost_ns());
    // Failover re-selection consults the per-node load scores (when the
    // tracker has learned any): before this, every retry round re-selected
    // from scratch in slot order and deterministically piled replacement
    // fetches onto the first survivor. Deterministic (no tie-breaking RNG
    // on this path): scores come only from observed responses.
    const std::vector<std::size_t> preference =
        load_preference(key, /*randomize=*/false, /*force=*/true);
    selected = preference.empty()
                   ? codec_->select_read_set(available)
                   : codec_->select_read_set_ordered(available, preference);
    if (!selected.ok()) break;  // not enough survivors: fall back / fail
    chosen = *selected;
    ++round;
  }
  if (tr != nullptr) {
    tr->complete(trace_pid(), phases->trace_tid, "get/fetch", "engine",
                 fetch_t0, sim().now() - fetch_t0, phases->trace.trace_id);
  }
  if (!complete || !meta) {
    if (!client_encodes(mode_)) {
      // Server-side encode may still be distributing this key's fragments;
      // the stager holds the full value until every fragment is acked, so
      // one server-side aggregate resolves the race (read-after-write).
      ++stats().fallback_gets;
      if (flight() != nullptr) {
        flight()->record(sim().now(), client().id(),
                         obs::FlightEventType::kFallback);
      }
      co_return co_await get_server_decode(std::move(key), phases);
    }
    co_return Status{worst, "missing fragments"};
  }

  const std::size_t value_size = meta->original_size;
  std::size_t missing_data = k;
  for (const std::size_t slot : chosen) {
    if (slot < k) --missing_data;
  }

  if (missing_data > 0) {
    // T_decode on the client CPU, only on the degraded path.
    const SimDur decode_ns =
        cost_.decode_ns(value_size, static_cast<unsigned>(missing_data));
    co_await client().cpu().execute(decode_ns);
    phases->compute_ns += decode_ns;
    if (tr != nullptr) {
      tr->complete(trace_pid(), phases->trace_tid, "get/decode", "engine",
                   sim().now() - decode_ns, decode_ns,
                   phases->trace.trace_id);
    }
  }

  const ec::ChunkLayout layout =
      ec::make_layout(value_size, k, codec_->alignment());
  if (!ctx().materialize) co_return Bytes(value_size);

  // Rebuild missing data fragments for real, then reassemble. Runs on the
  // engine-wide scratch (no co_await from here to join_fragments): fetched
  // fragments copy-assign into slots whose capacity persists across ops,
  // and absent slots are zero-filled in place for the reconstruct kernels.
  DecodeScratch& sc = scratch_;
  sc.storage.resize(n);
  sc.present.assign(n, false);
  for (const std::size_t slot : chosen) {
    if (!frag[slot]) continue;
    sc.storage[slot] = *frag[slot];
    sc.present[slot] = true;
  }
  for (std::size_t slot = 0; slot < n; ++slot) {
    if (!sc.present[slot]) {
      sc.storage[slot].assign(layout.fragment_size, std::byte{0});
    }
  }
  sc.spans.assign(sc.storage.begin(), sc.storage.end());
  if (missing_data > 0) {
    const Status s = codec_->reconstruct_data(sc.spans, sc.present);
    if (!s.ok()) co_return s;
  }
  std::vector<ConstByteSpan> data(
      sc.storage.begin(), sc.storage.begin() + static_cast<std::ptrdiff_t>(k));
  co_return ec::join_fragments(data, layout);
}

std::vector<std::size_t> ErasureEngine::load_preference(const kv::Key& key,
                                                        bool randomize,
                                                        bool force) {
  // Cold tracker: nothing learned, keep the deterministic natural order.
  // Without `force`, a preference is only produced when load-aware
  // selection was asked for.
  if ((!force && !hedge_.load_aware) || load_.total_samples() == 0) return {};
  const std::size_t n = codec_->n();
  std::vector<std::size_t> slots(n);
  std::iota(slots.begin(), slots.end(), std::size_t{0});
  std::vector<std::size_t> owners(n);
  for (std::size_t slot = 0; slot < n; ++slot) {
    owners[slot] = ring().slot_index(key, slot);
  }
  return load_.order_slots(slots, owners, randomize);
}

SimDur ErasureEngine::hedge_delay() const noexcept {
  SimDur d = hedge_.delay_ns;
  if (hedge_.delay_quantile > 0.0 && stats().get_latency.count() > 0) {
    d = std::max(d, stats().get_latency.quantile(hedge_.delay_quantile));
  }
  return d;
}

sim::Task<void> ErasureEngine::hedged_collector(
    ErasureEngine* self, std::shared_ptr<HedgeFetchState> st,
    std::size_t slot, bool is_hedge, sim::Future<kv::Response> fut,
    SimTime issued_at) {
  kv::Response resp = co_await fut.wait();
  if (is_hedge) self->arpe().release_hedge_buffer();
  st->rpc_of_slot[slot] = 0;
  --st->outstanding;
  if (resp.code == StatusCode::kOk) {
    self->load_.observe_rtt(st->owner[slot], self->sim().now() - issued_at,
                            resp.queue_depth);
    if (st->op_done) {
      // Arrived after the op already completed: fetched bytes were wasted.
      self->stats().hedge_wasted_bytes +=
          resp.value ? resp.value->size() : 0;
    } else {
      st->frag[slot] = std::move(resp.value);
      st->have[slot] = true;
      ++st->ok;
      if (resp.chunk) st->meta = resp.chunk;
    }
  } else if (resp.code != StatusCode::kCancelled) {
    st->worst = resp.code;
    st->available[slot] = false;
    st->failed_any = true;
  }
  st->progress.notify_all();
}

void ErasureEngine::issue_hedged_fetch(
    const kv::Key& key, const std::shared_ptr<HedgeFetchState>& st,
    std::size_t slot, bool is_hedge, const obs::TraceContext& trace) {
  st->attempted[slot] = true;
  if (is_hedge) st->hedge_slot[slot] = true;
  kv::Request req;
  req.verb = kv::Verb::kGet;
  req.key = kv::chunk_key(key, slot);
  req.trace = trace;
  sim::Future<kv::Response> fut =
      client().guarded_future(node_of(st->owner[slot]), std::move(req));
  // Remember the rpc id so stragglers can be cancel-resolved at op
  // completion — but only for plain unguarded calls: guarded calls resolve
  // themselves through their deadline, and a failed-fast call has id 0.
  if (client().policy().timeout_ns <= 0) {
    st->rpc_of_slot[slot] = client().last_call_id();
  }
  ++st->outstanding;
  sim().spawn(hedged_collector(this, st, slot, is_hedge, std::move(fut),
                               sim().now()));
}

sim::Task<void> ErasureEngine::hedge_firer(
    ErasureEngine* self, kv::Key key, std::shared_ptr<HedgeFetchState> st,
    std::vector<std::size_t> hedge_slots, obs::TraceContext trace,
    std::uint64_t trace_tid) {
  const std::size_t k = self->codec_->k();
  const SimDur delay = self->hedge_delay();
  if (delay > 0) co_await self->sim().delay(delay);
  bool fired = false;
  for (const std::size_t slot : hedge_slots) {
    // Late binding: a hedge only fires while the op is still short of k
    // arrivals and its target slot has not failed meanwhile.
    if (st->op_done || st->ok >= k) break;
    if (st->attempted[slot] || !st->available[slot]) continue;
    if (!self->arpe().try_acquire_hedge_buffer()) {
      // Pool tight: hedging is best-effort and must never add
      // backpressure to admitted work.
      ++self->stats().hedges_suppressed;
      break;
    }
    // The duplicate request costs real client CPU — that is the p50 price
    // of hedging and must show up in the schedule.
    co_await self->client().cpu().execute(
        self->issue_cost(key.size() + 2));
    if (st->op_done || st->ok >= k) {  // op finished while queued on CPU
      self->arpe().release_hedge_buffer();
      break;
    }
    ++self->stats().hedges_fired;
    fired = true;
    if (obs::Tracer* const tr = self->tracer(); tr != nullptr) {
      tr->instant(self->trace_pid(), trace_tid, "hedge/fire", "engine",
                  self->sim().now(), trace.trace_id);
    }
    if (obs::FlightRecorder* const fl = self->flight(); fl != nullptr) {
      fl->record(self->sim().now(), self->node_of(st->owner[slot]),
                 obs::FlightEventType::kHedgeFired, 0,
                 static_cast<std::uint32_t>(self->client().id()));
    }
    self->issue_hedged_fetch(key, st, slot, true, trace);
  }
  if (fired) ++self->stats().hedged_gets;
}

sim::Task<Result<Bytes>> ErasureEngine::get_client_decode_hedged(
    kv::Key key, OpPhases* phases) {
  const std::size_t k = codec_->k();
  const std::size_t n = codec_->n();

  auto st = std::make_shared<HedgeFetchState>(sim(), n);
  bool degraded = false;
  for (std::size_t slot = 0; slot < n; ++slot) {
    st->owner[slot] = ring().slot_index(key, slot);
    if (membership().up(st->owner[slot])) {
      st->available[slot] = true;
    } else {
      degraded = true;
    }
  }
  if (degraded) {
    ++stats().degraded_gets;
    phases->degraded = true;
    co_await sim().delay(membership().check_cost_ns());
  }

  // Load-ranked candidate order (power-of-two-choices among near-equal
  // scores); natural order while the tracker is cold or load-aware
  // selection is off.
  std::vector<std::size_t> preference =
      load_preference(key, /*randomize=*/hedge_.load_aware,
                      /*force=*/false);
  Result<std::vector<std::size_t>> selected =
      preference.empty()
          ? codec_->select_read_set(st->available)
          : codec_->select_read_set_ordered(st->available, preference);
  if (!selected.ok()) co_return selected.status();

  // K non-blocking fragment fetches posted back-to-back from one CPU
  // slice (Equation 8), exactly like the unhedged path.
  const SimDur post_ns =
      static_cast<SimDur>(k) * issue_cost(key.size() + 2);
  co_await client().cpu().execute(post_ns);
  phases->request_ns += post_ns;
  obs::Tracer* const tr = tracer();
  if (tr != nullptr) {
    tr->complete(trace_pid(), phases->trace_tid, "get/request", "engine",
                 sim().now() - post_ns, post_ns, phases->trace.trace_id);
  }

  const SimTime fetch_t0 = sim().now();
  for (const std::size_t slot : *selected) {
    issue_hedged_fetch(key, st, slot, false, phases->trace);
  }

  // Queue up to Δ hedges over the next-best candidates, fired after the
  // hedge delay if the op is still short of k arrivals.
  if (hedge_.delta > 0) {
    std::vector<std::size_t> hedge_slots;
    const std::vector<std::size_t> pool =
        preference.empty()
            ? [n] {
                std::vector<std::size_t> natural(n);
                std::iota(natural.begin(), natural.end(), std::size_t{0});
                return natural;
              }()
            : preference;
    for (const std::size_t slot : pool) {
      if (hedge_slots.size() >= hedge_.delta) break;
      if (!st->attempted[slot] && st->available[slot]) {
        hedge_slots.push_back(slot);
      }
    }
    if (!hedge_slots.empty()) {
      sim().spawn(hedge_firer(this, key, st, std::move(hedge_slots),
                              phases->trace, phases->trace_tid));
    }
  }

  // Late-binding wait: complete on the first k decodable arrivals,
  // failing over (load-aware) when fetches die.
  bool complete = false;
  std::vector<std::size_t> decode_set;
  for (;;) {
    if (st->ok >= k) {
      Result<std::vector<std::size_t>> fin =
          codec_->select_read_set(st->have);
      if (fin.ok()) {
        decode_set = *fin;
        complete = true;
        break;
      }
    }
    if (st->failed_any) {
      st->failed_any = false;
      if (!degraded) {
        degraded = true;
        ++stats().degraded_gets;
      }
      phases->degraded = true;
      co_await sim().delay(membership().check_cost_ns());
      // Failover re-selection consults the same load scores as the
      // initial choice, so repeated retries spread over the survivors
      // instead of piling onto the first one.
      preference = load_preference(key, /*randomize=*/hedge_.load_aware,
                                   /*force=*/true);
      Result<std::vector<std::size_t>> resel =
          preference.empty()
              ? codec_->select_read_set(st->available)
              : codec_->select_read_set_ordered(st->available, preference);
      if (resel.ok()) {
        for (const std::size_t slot : *resel) {
          if (st->attempted[slot] || st->have[slot]) continue;
          ++stats().failover_fetches;
          if (flight() != nullptr) {
            flight()->record(sim().now(), node_of(st->owner[slot]),
                             obs::FlightEventType::kFailover, 0,
                             static_cast<std::uint32_t>(client().id()));
          }
          issue_hedged_fetch(key, st, slot, false, phases->trace);
        }
      } else if (st->outstanding == 0) {
        break;  // not enough survivors and nothing in flight
      }
      continue;
    }
    if (st->outstanding == 0) break;
    co_await st->progress.wait();
  }

  // Bind the result: everything still in flight is a straggler. Cancel
  // through the stale-response machinery and resolve the futures so the
  // collectors unwind instead of leaking parked until process exit.
  st->op_done = true;
  std::size_t cancelled = 0;
  for (std::size_t slot = 0; slot < n; ++slot) {
    const std::uint64_t rpc_id = st->rpc_of_slot[slot];
    if (rpc_id == 0) continue;
    ++cancelled;
    client().cancel_resolve(rpc_id);
  }
  if (st->meta != std::nullopt && cancelled > 0) {
    // A cancelled fetch's response (in flight or about to be produced) is
    // one fragment of wasted wire work.
    stats().hedge_wasted_bytes +=
        cancelled * ec::make_layout(st->meta->original_size, k,
                                    codec_->alignment())
                        .fragment_size;
  }
  if (complete) {
    for (const std::size_t slot : decode_set) {
      if (st->hedge_slot[slot]) {
        ++stats().hedge_wins;
        if (flight() != nullptr) {
          flight()->record(sim().now(), node_of(st->owner[slot]),
                           obs::FlightEventType::kHedgeWon, 0,
                           static_cast<std::uint32_t>(client().id()));
        }
      }
    }
    for (std::size_t slot = 0; slot < n; ++slot) {
      if (!st->have[slot]) continue;
      if (std::find(decode_set.begin(), decode_set.end(), slot) ==
          decode_set.end()) {
        stats().hedge_wasted_bytes +=
            st->frag[slot] ? st->frag[slot]->size() : 0;
      }
    }
  }
  if (tr != nullptr) {
    tr->complete(trace_pid(), phases->trace_tid, "get/fetch", "engine",
                 fetch_t0, sim().now() - fetch_t0, phases->trace.trace_id);
  }
  if (!complete || !st->meta) {
    if (!client_encodes(mode_)) {
      // Server-side encode may still be distributing this key's fragments;
      // the stager resolves the race (read-after-write) — see
      // get_client_decode.
      ++stats().fallback_gets;
      if (flight() != nullptr) {
        flight()->record(sim().now(), client().id(),
                         obs::FlightEventType::kFallback);
      }
      co_return co_await get_server_decode(std::move(key), phases);
    }
    co_return Status{st->worst, "missing fragments"};
  }

  const std::size_t value_size = st->meta->original_size;
  std::size_t missing_data = k;
  for (const std::size_t slot : decode_set) {
    if (slot < k) --missing_data;
  }

  if (missing_data > 0) {
    const SimDur decode_ns =
        cost_.decode_ns(value_size, static_cast<unsigned>(missing_data));
    co_await client().cpu().execute(decode_ns);
    phases->compute_ns += decode_ns;
    if (tr != nullptr) {
      tr->complete(trace_pid(), phases->trace_tid, "get/decode", "engine",
                   sim().now() - decode_ns, decode_ns,
                   phases->trace.trace_id);
    }
  }

  const ec::ChunkLayout layout =
      ec::make_layout(value_size, k, codec_->alignment());
  if (!ctx().materialize) co_return Bytes(value_size);

  // Same engine-wide scratch as the unhedged path; the fill-and-consume
  // region below is synchronous (no co_await), so it is race-free.
  DecodeScratch& sc = scratch_;
  sc.storage.resize(n);
  sc.present.assign(n, false);
  for (const std::size_t slot : decode_set) {
    if (!st->frag[slot]) continue;
    sc.storage[slot] = *st->frag[slot];
    sc.present[slot] = true;
  }
  for (std::size_t slot = 0; slot < n; ++slot) {
    if (!sc.present[slot]) {
      sc.storage[slot].assign(layout.fragment_size, std::byte{0});
    }
  }
  sc.spans.assign(sc.storage.begin(), sc.storage.end());
  if (missing_data > 0) {
    const Status s = codec_->reconstruct_data(sc.spans, sc.present);
    if (!s.ok()) co_return s;
  }
  std::vector<ConstByteSpan> data(
      sc.storage.begin(), sc.storage.begin() + static_cast<std::ptrdiff_t>(k));
  co_return ec::join_fragments(data, layout);
}

sim::Task<Result<Bytes>> ErasureEngine::get_server_decode(kv::Key key,
                                                          OpPhases* phases) {
  const LiveSlot ls = co_await pick_live_slot(key);
  if (ls.degraded) {
    ++stats().degraded_gets;
    phases->degraded = true;
  }
  if (!ls.slot) {
    co_return Status{StatusCode::kUnavailable, "no live server"};
  }
  const std::size_t target_index = ring().slot_index(key, *ls.slot);
  const net::NodeId target = node_of(target_index);

  kv::Request req;
  req.verb = kv::Verb::kGetDecode;
  req.key = std::move(key);
  req.trace = phases->trace;
  const SimDur issue_ns = issue_cost(req.key.size());
  phases->request_ns += issue_ns;
  const SimTime t0 = sim().now();
  kv::Response resp = co_await client().invoke(target, std::move(req));
  if (resp.code == StatusCode::kOk) {
    load_.observe_rtt(target_index, sim().now() - t0, resp.queue_depth);
  }
  if (obs::Tracer* const tr = tracer(); tr != nullptr) {
    tr->complete(trace_pid(), phases->trace_tid, "get/request", "engine", t0,
                 issue_ns, phases->trace.trace_id);
    tr->complete(trace_pid(), phases->trace_tid, "get/fetch", "engine",
                 t0 + issue_ns,
                 std::max<SimDur>(0, sim().now() - t0 - issue_ns),
                 phases->trace.trace_id);
  }
  if (resp.code != StatusCode::kOk) co_return Status{resp.code};
  co_return resp.value ? Bytes(*resp.value) : Bytes{};
}

// ---- Packed-stripe (batched small-object) write path ------------------
//
// Small values append into a per-primary-server stripe buffer; the stripe
// seals when full or when the group-commit timer fires, is encoded ONCE,
// and its n fragments fan out under the stripe's own base key. The key ->
// {stripe, offset, len} locator is installed, replicated m+1 ways, at the
// key's natural owner set — which, because the ring places slot j at
// (primary + j) % S, is shared by every record in the stripe: one batched
// install RPC per directory owner.

sim::Task<void> ErasureEngine::unlink_locator(
    kv::Key key, std::vector<sim::Future<kv::Response>>* out) {
  const std::size_t m = codec_->m();
  for (std::size_t j = 0; j <= m; ++j) {
    const std::size_t owner = ring().slot_index(key, j);
    if (!membership().up(owner)) continue;
    kv::Request req;
    req.verb = kv::Verb::kDelete;
    req.key = key;
    req.stripe_lookup = true;
    out->push_back(client().call_async(node_of(owner), std::move(req)));
  }
  co_return;
}

sim::Task<Status> ErasureEngine::set_routed_packed(kv::Key key,
                                                   SharedBytes value,
                                                   OpPhases* phases) {
  const std::size_t value_size = value ? value->size() : 0;
  const std::size_t rec = ec::stripe_record_bytes(key.size(), value_size);
  if (value_size < pack_.pack_threshold && rec <= pack_.stripe_capacity) {
    co_return co_await set_packed(std::move(key), std::move(value), phases);
  }
  // Large value while packing is on: the per-key path stores it. Any
  // earlier packed life of this key must not resurrect — drop its staged
  // copy (the commit-time filter then skips its locator install) and
  // unlink committed locator entries.
  staging_.erase(key);
  std::vector<sim::Future<kv::Response>> unlink;
  co_await unlink_locator(key, &unlink);
  const Status s = co_await set_client_encode(key, std::move(value), phases);
  for (auto& f : unlink) co_await f.wait();
  co_return s;
}

sim::Task<Status> ErasureEngine::set_packed(kv::Key key, SharedBytes value,
                                            OpPhases* phases) {
  const std::size_t value_size = value ? value->size() : 0;
  const std::size_t rec = ec::stripe_record_bytes(key.size(), value_size);
  const std::size_t primary = ring().slot_index(key, 0);

  if (const auto it = active_.find(primary);
      it != active_.end() && it->second->used + rec > pack_.stripe_capacity) {
    seal_stripe(primary, /*by_timer=*/false);
  }
  std::shared_ptr<StripeState>& slot = active_[primary];
  if (!slot) {
    slot = std::make_shared<StripeState>(sim());
    slot->skey = kv::stripe_key(client().id(), stripe_seq_++);
    sim().spawn(stripe_timer(this, slot, primary));
  }
  const std::shared_ptr<StripeState> st = slot;  // survives map rehash

  kv::StripeIndexEntry entry;
  entry.key = key;
  entry.len = static_cast<std::uint32_t>(value_size);
  if (ctx().materialize) {
    const ConstByteSpan v =
        value ? ConstByteSpan(*value) : ConstByteSpan{};
    entry.offset =
        static_cast<std::uint32_t>(ec::stripe_append(st->buffer, key, v));
    st->used = st->buffer.size();
  } else {
    entry.offset = static_cast<std::uint32_t>(
        st->used + ec::kStripeRecordHeader + key.size());
    st->used += rec;
  }
  st->records.push_back(std::move(entry));
  st->values.push_back(value);
  staging_[key] = std::move(value);
  ++stats().packed_sets;
  stats().stripe_record_bytes += rec;

  // The append itself (copy into the stripe buffer) is this op's only
  // request-phase CPU; encode and fan-out are paid once per stripe by the
  // commit coroutine.
  const SimDur append_ns = issue_cost(rec);
  co_await client().cpu().execute(append_ns);
  phases->request_ns += append_ns;
  if (obs::Tracer* const tr = tracer(); tr != nullptr) {
    tr->complete(trace_pid(), phases->trace_tid, "set/append", "engine",
                 sim().now() - append_ns, append_ns, phases->trace.trace_id);
  }

  // The Set future resolves at stripe durability (group commit).
  co_await st->done.wait();
  co_return st->result;
}

void ErasureEngine::seal_stripe(std::size_t primary, bool by_timer) {
  const auto it = active_.find(primary);
  if (it == active_.end()) return;
  std::shared_ptr<StripeState> st = std::move(it->second);
  active_.erase(it);
  st->sealed = true;
  ++stats().stripes_sealed;
  if (by_timer) ++stats().stripes_timer_sealed;
  fill_permille_sum_ += st->used * 1000 / pack_.stripe_capacity;
  stats().stripe_fill_x1000 = fill_permille_sum_ / stats().stripes_sealed;
  sim().spawn(commit_stripe(this, std::move(st)));
}

sim::Task<void> ErasureEngine::stripe_timer(ErasureEngine* self,
                                            std::shared_ptr<StripeState> st,
                                            std::size_t primary) {
  co_await self->sim().delay(self->pack_.group_commit_interval);
  if (st->sealed) co_return;  // a capacity seal beat the timer
  assert(self->active_.count(primary) != 0 &&
         self->active_[primary] == st && "unsealed stripe must be active");
  self->seal_stripe(primary, /*by_timer=*/true);
}

sim::Task<void> ErasureEngine::commit_stripe(ErasureEngine* self,
                                             std::shared_ptr<StripeState> st) {
  // Durability work may never be dropped: block for a bounce buffer
  // (BufferPool's no-steal rule keeps hedges from jumping this queue).
  // Writers keep appending into the NEW active stripe meanwhile — the
  // double-buffered group commit.
  co_await self->arpe().acquire_commit_buffer();

  const std::size_t k = self->codec_->k();
  const std::size_t m = self->codec_->m();
  const std::size_t n = self->codec_->n();
  const std::size_t stripe_bytes = st->used;
  const ec::ChunkLayout layout =
      ec::make_layout(stripe_bytes, k, self->codec_->alignment());

  // Records overwritten (or deleted) while the stripe was filling have a
  // stale staged pointer; skip their locator installs so the newer value
  // wins. The stripe bytes themselves become garbage.
  std::vector<kv::StripeIndexEntry> live;
  live.reserve(st->records.size());
  for (std::size_t i = 0; i < st->records.size(); ++i) {
    const auto sit = self->staging_.find(st->records[i].key);
    if (sit != self->staging_.end() && sit->second == st->values[i]) {
      live.push_back(st->records[i]);
    }
  }

  // One contiguous CPU slice: encode the stripe, then post all fragment
  // and locator-install sends back-to-back (same rationale as
  // set_client_encode).
  std::size_t index_payload = 0;
  for (const auto& e : live) index_payload += e.key.size() + 12;
  const SimDur encode_ns = self->cost_.encode_ns(stripe_bytes);
  const SimDur post_ns =
      static_cast<SimDur>(n) * self->issue_cost(layout.fragment_size) +
      static_cast<SimDur>(m + 1) *
          self->issue_cost(st->skey.size() + index_payload);
  const SimTime cpu_t0 = self->sim().now();
  co_await self->client().cpu().execute(encode_ns + post_ns);
  if (obs::Tracer* const tr = self->tracer(); tr != nullptr) {
    const std::uint64_t aid = std::hash<std::string>{}(st->skey);
    tr->async_span(self->trace_pid(), aid, "stripe/encode", "engine", cpu_t0,
                   encode_ns);
    tr->async_span(self->trace_pid(), aid + 1, "stripe/post", "engine",
                   cpu_t0 + encode_ns, post_ns);
  }

  std::vector<SharedBytes> fragments;
  fragments.reserve(n);
  if (self->ctx().materialize) {
    std::vector<Bytes> data = ec::split_value(st->buffer, layout);
    std::vector<ConstByteSpan> data_spans(data.begin(), data.end());
    std::vector<Bytes> parity(m, Bytes(layout.fragment_size));
    std::vector<ByteSpan> parity_spans(parity.begin(), parity.end());
    self->codec_->encode(data_spans, parity_spans);
    for (auto& f : data) fragments.push_back(make_shared_bytes(std::move(f)));
    for (auto& p : parity) {
      fragments.push_back(make_shared_bytes(std::move(p)));
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      fragments.push_back(zero_bytes(layout.fragment_size));
    }
  }

  // Fragment fan-out under the stripe's own base key (the repair
  // coordinator discovers and rebuilds stripes through the same
  // chunk-key scan as per-key fragments).
  std::vector<sim::Future<kv::Response>> frag_pending;
  std::vector<std::size_t> frag_owners;
  frag_pending.reserve(n);
  for (std::size_t slot = 0; slot < n; ++slot) {
    const std::size_t owner = self->ring().slot_index(st->skey, slot);
    if (!self->membership().up(owner)) continue;
    kv::Request req;
    req.verb = kv::Verb::kSet;
    req.key = kv::chunk_key(st->skey, slot);
    req.value = fragments[slot];
    req.chunk = kv::ChunkInfo{stripe_bytes,
                              static_cast<std::uint32_t>(slot),
                              static_cast<std::uint16_t>(k),
                              static_cast<std::uint16_t>(m)};
    frag_pending.push_back(
        self->client().guarded_future(self->node_of(owner), std::move(req)));
    frag_owners.push_back(owner);
  }

  // Batched locator installs: all records share their primary (that is
  // how they were grouped), so they share the full m+1 directory owner
  // set — one RPC per owner for the whole stripe.
  std::vector<sim::Future<kv::Response>> dir_pending;
  if (!live.empty()) {
    const kv::Key& anchor = st->records.front().key;
    for (std::size_t j = 0; j <= m; ++j) {
      const std::size_t owner = self->ring().slot_index(anchor, j);
      if (!self->membership().up(owner)) continue;
      kv::Request req;
      req.verb = kv::Verb::kSetStripeIndex;
      req.key = st->skey;
      req.chunk = kv::ChunkInfo{stripe_bytes, 0,
                                static_cast<std::uint16_t>(k),
                                static_cast<std::uint16_t>(m)};
      req.stripe_index = live;
      dir_pending.push_back(
          self->client().guarded_future(self->node_of(owner),
                                        std::move(req)));
    }
  }

  std::size_t frag_ok = 0;
  bool bounced = false;
  const SimTime fanout_t0 = self->sim().now();
  for (std::size_t i = 0; i < frag_pending.size(); ++i) {
    const kv::Response resp = co_await frag_pending[i].wait();
    if (resp.code == StatusCode::kOk) {
      ++frag_ok;
      self->load_.observe_rtt(frag_owners[i], self->sim().now() - fanout_t0,
                              resp.queue_depth);
    } else if (resp.code == StatusCode::kWrongEpoch) {
      bounced = true;
    }
  }
  std::size_t dir_ok = 0;
  for (auto& f : dir_pending) {
    const kv::Response resp = co_await f.wait();
    if (resp.code == StatusCode::kOk) ++dir_ok;
    if (resp.code == StatusCode::kWrongEpoch) bounced = true;
  }
  if (obs::Tracer* const tr = self->tracer(); tr != nullptr) {
    tr->async_span(self->trace_pid(),
                   std::hash<std::string>{}(st->skey) + 2, "stripe/fanout",
                   "engine", fanout_t0, self->sim().now() - fanout_t0);
  }

  // Durability: any k fragments reconstruct the stripe, and at least one
  // directory owner can name it (the directory itself is recoverable from
  // stripe contents — records embed their keys). A stale-epoch bounce
  // outranks both: every waiter's set retries whole (Engine::set_impl),
  // re-staging its record under the refreshed ring.
  const bool durable =
      frag_ok >= k && (live.empty() || dir_ok >= 1);
  st->result = bounced ? Status{StatusCode::kWrongEpoch,
                                "stale placement epoch"}
               : durable ? Status::Ok()
                         : Status{StatusCode::kUnavailable,
                                  "stripe commit not durable"};

  // Staged copies served read-your-writes until now; drop the ones this
  // stripe owns (pointer match — overwrites keep their newer entry).
  for (std::size_t i = 0; i < st->records.size(); ++i) {
    const auto sit = self->staging_.find(st->records[i].key);
    if (sit != self->staging_.end() && sit->second == st->values[i]) {
      self->staging_.erase(sit);
    }
  }

  self->arpe().release_commit_buffer();
  st->done.set();
}

sim::Task<Result<Bytes>> ErasureEngine::get_packed(kv::Key key,
                                                   OpPhases* phases) {
  // Read-your-writes: a value whose stripe has not committed yet is served
  // from the staged copy, exactly like the server-encode stager.
  if (const auto it = staging_.find(key); it != staging_.end()) {
    ++stats().staged_reads;
    co_return it->second ? Bytes(*it->second) : Bytes{};
  }

  const std::size_t k = codec_->k();
  const std::size_t m = codec_->m();
  const std::size_t n = codec_->n();
  bool degraded = false;

  // Locator query at every live directory owner in parallel: any kOk with
  // a locator wins; unanimous kNotFound means the key never packed (or was
  // unlinked) and the legacy per-key path applies. Querying all owners
  // (not just the first live one) tolerates an owner that missed its
  // install while it was down.
  std::vector<sim::Future<kv::Response>> lookups;
  std::vector<std::size_t> lookup_owners;
  for (std::size_t j = 0; j <= m; ++j) {
    const std::size_t owner = ring().slot_index(key, j);
    if (!membership().up(owner)) {
      degraded = true;
      continue;
    }
    kv::Request req;
    req.verb = kv::Verb::kGet;
    req.key = key;
    req.stripe_lookup = true;
    req.trace = phases->trace;
    lookups.push_back(client().guarded_future(node_of(owner),
                                              std::move(req)));
    lookup_owners.push_back(owner);
  }
  if (degraded) {
    ++stats().degraded_gets;
    phases->degraded = true;
    co_await sim().delay(membership().check_cost_ns());
  }
  if (lookups.empty()) {
    co_return Status{StatusCode::kUnavailable, "no live directory owner"};
  }
  const SimDur lookup_post_ns =
      static_cast<SimDur>(lookups.size()) * issue_cost(key.size());
  co_await client().cpu().execute(lookup_post_ns);
  phases->request_ns += lookup_post_ns;
  obs::Tracer* const tr = tracer();
  if (tr != nullptr) {
    tr->complete(trace_pid(), phases->trace_tid, "get/locator", "engine",
                 sim().now() - lookup_post_ns, lookup_post_ns,
                 phases->trace.trace_id);
  }

  std::optional<kv::StripeLoc> loc;
  std::size_t notfound = 0;
  const SimTime lookup_t0 = sim().now();
  for (std::size_t i = 0; i < lookups.size(); ++i) {
    const kv::Response resp = co_await lookups[i].wait();
    if (resp.code == StatusCode::kOk && resp.stripe) {
      if (!loc) loc = resp.stripe;
      load_.observe_rtt(lookup_owners[i], sim().now() - lookup_t0,
                        resp.queue_depth);
    } else if (resp.code == StatusCode::kNotFound) {
      ++notfound;
    }
  }
  if (!loc) {
    if (notfound == lookups.size()) {
      // Definitively unpacked: legacy per-key path (hedged when on).
      if (hedge_.enabled()) {
        co_return co_await get_client_decode_hedged(std::move(key), phases);
      }
      co_return co_await get_client_decode(std::move(key), phases);
    }
    if (!degraded) {
      ++stats().degraded_gets;
      degraded = true;
    }
    phases->degraded = true;
    co_return Status{StatusCode::kUnavailable, "locator unreachable"};
  }
  ++stats().packed_get_hits;
  if (loc->len == 0) co_return Bytes{};

  const ec::ChunkLayout layout =
      ec::make_layout(loc->stripe_bytes, k, codec_->alignment());
  const ec::FragmentRange range =
      ec::owning_fragments(layout, loc->offset, loc->len);

  // Healthy path: fetch only the whole data fragments covering the
  // sub-slot range (usually one, at most two for threshold-sized values).
  std::vector<SharedBytes> frag(n);
  std::vector<bool> have(n, false);
  bool healthy = true;
  for (std::size_t slot = range.first; slot <= range.last; ++slot) {
    if (!membership().up(ring().slot_index(loc->stripe, slot))) {
      healthy = false;
      break;
    }
  }
  if (healthy) {
    const SimDur post_ns = static_cast<SimDur>(range.count()) *
                           issue_cost(loc->stripe.size() + 2);
    co_await client().cpu().execute(post_ns);
    phases->request_ns += post_ns;
    const SimTime fetch_t0 = sim().now();
    std::vector<sim::Future<kv::Response>> pending;
    std::vector<std::size_t> pending_slots;
    for (std::size_t slot = range.first; slot <= range.last; ++slot) {
      kv::Request req;
      req.verb = kv::Verb::kGet;
      req.key = kv::chunk_key(loc->stripe, slot);
      req.trace = phases->trace;
      pending.push_back(client().guarded_future(
          node_of(ring().slot_index(loc->stripe, slot)), std::move(req)));
      pending_slots.push_back(slot);
    }
    for (std::size_t i = 0; i < pending.size(); ++i) {
      kv::Response resp = co_await pending[i].wait();
      const std::size_t slot = pending_slots[i];
      if (resp.code == StatusCode::kOk) {
        load_.observe_rtt(ring().slot_index(loc->stripe, slot),
                          sim().now() - fetch_t0, resp.queue_depth);
        frag[slot] = std::move(resp.value);
        have[slot] = true;
      } else {
        healthy = false;
      }
    }
    if (tr != nullptr) {
      tr->complete(trace_pid(), phases->trace_tid, "get/fetch", "engine",
                   fetch_t0, sim().now() - fetch_t0, phases->trace.trace_id);
    }
    if (healthy) {
      if (!ctx().materialize) co_return Bytes(loc->len);
      std::vector<ConstByteSpan> spans;
      spans.reserve(range.count());
      for (std::size_t slot = range.first; slot <= range.last; ++slot) {
        spans.push_back(*frag[slot]);
      }
      co_return ec::extract_from_fragments(spans, range, layout, loc->offset,
                                           loc->len);
    }
  }

  // Degraded: reconstruct the stripe's data from any k live fragments
  // (whole-stripe decode), then splice the value out.
  ++stats().packed_degraded_gets;
  if (!degraded) ++stats().degraded_gets;
  phases->degraded = true;
  co_await sim().delay(membership().check_cost_ns());

  std::vector<bool> available(n, false);
  for (std::size_t slot = 0; slot < n; ++slot) {
    available[slot] =
        membership().up(ring().slot_index(loc->stripe, slot));
  }
  Result<std::vector<std::size_t>> selected =
      codec_->select_read_set(available);
  if (!selected.ok()) co_return selected.status();
  std::vector<std::size_t> chosen = *selected;

  StatusCode worst = StatusCode::kNotFound;
  bool complete = false;
  const SimTime fetch_t0 = sim().now();
  for (;;) {
    std::vector<sim::Future<kv::Response>> pending;
    std::vector<std::size_t> pending_slots;
    std::size_t to_fetch = 0;
    for (const std::size_t slot : chosen) {
      if (!have[slot]) ++to_fetch;
    }
    if (to_fetch > 0) {
      const SimDur post_ns = static_cast<SimDur>(to_fetch) *
                             issue_cost(loc->stripe.size() + 2);
      co_await client().cpu().execute(post_ns);
      phases->request_ns += post_ns;
    }
    for (const std::size_t slot : chosen) {
      if (have[slot]) continue;
      kv::Request req;
      req.verb = kv::Verb::kGet;
      req.key = kv::chunk_key(loc->stripe, slot);
      req.trace = phases->trace;
      pending.push_back(client().guarded_future(
          node_of(ring().slot_index(loc->stripe, slot)), std::move(req)));
      pending_slots.push_back(slot);
    }
    bool failure = false;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      kv::Response resp = co_await pending[i].wait();
      const std::size_t slot = pending_slots[i];
      if (resp.code == StatusCode::kOk) {
        frag[slot] = std::move(resp.value);
        have[slot] = true;
      } else {
        worst = resp.code;
        available[slot] = false;
        failure = true;
      }
    }
    if (!failure) {
      complete = true;
      break;
    }
    co_await sim().delay(membership().check_cost_ns());
    selected = codec_->select_read_set(available);
    if (!selected.ok()) break;
    chosen = *selected;
  }
  if (tr != nullptr) {
    tr->complete(trace_pid(), phases->trace_tid, "get/fetch", "engine",
                 fetch_t0, sim().now() - fetch_t0, phases->trace.trace_id);
  }
  if (!complete) co_return Status{worst, "missing stripe fragments"};

  std::size_t missing_data = k;
  for (const std::size_t slot : chosen) {
    if (slot < k) --missing_data;
  }
  if (missing_data > 0) {
    const SimDur decode_ns = cost_.decode_ns(
        loc->stripe_bytes, static_cast<unsigned>(missing_data));
    co_await client().cpu().execute(decode_ns);
    phases->compute_ns += decode_ns;
    if (tr != nullptr) {
      tr->complete(trace_pid(), phases->trace_tid, "get/decode", "engine",
                   sim().now() - decode_ns, decode_ns,
                   phases->trace.trace_id);
    }
  }
  if (!ctx().materialize) co_return Bytes(loc->len);

  DecodeScratch& sc = scratch_;
  sc.storage.resize(n);
  sc.present.assign(n, false);
  for (const std::size_t slot : chosen) {
    if (!frag[slot]) continue;
    sc.storage[slot] = *frag[slot];
    sc.present[slot] = true;
  }
  for (std::size_t slot = 0; slot < n; ++slot) {
    if (!sc.present[slot]) {
      sc.storage[slot].assign(layout.fragment_size, std::byte{0});
    }
  }
  sc.spans.assign(sc.storage.begin(), sc.storage.end());
  if (missing_data > 0) {
    const Status s = codec_->reconstruct_data(sc.spans, sc.present);
    if (!s.ok()) co_return s;
  }
  std::vector<ConstByteSpan> spans;
  spans.reserve(range.count());
  for (std::size_t slot = range.first; slot <= range.last; ++slot) {
    spans.push_back(ConstByteSpan(sc.storage[slot]));
  }
  co_return ec::extract_from_fragments(spans, range, layout, loc->offset,
                                       loc->len);
}

}  // namespace hpres::resilience
