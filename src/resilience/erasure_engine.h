// Online erasure-coding engine: the paper's primary contribution
// (Section IV). One engine instance implements one of the four offload
// designs, combining client- or server-side encode with client- or
// server-side decode:
//
//   Era-CE-CD  client encodes + distributes; client aggregates + decodes
//   Era-SE-SD  server encodes + distributes; server aggregates + decodes
//   Era-SE-CD  server encodes; client aggregates + decodes (hybrid)
//   Era-CE-SD  client encodes; server aggregates + decodes (hybrid,
//              included for completeness; the paper sets it aside)
#pragma once

#include <unordered_map>

#include "ec/chunker.h"
#include "ec/codec.h"
#include "ec/cost_model.h"
#include "ec/stripe.h"
#include "resilience/engine.h"

namespace hpres::resilience {

enum class EraMode : std::uint8_t { kCeCd, kSeSd, kSeCd, kCeSd };

[[nodiscard]] constexpr std::string_view to_string(EraMode m) noexcept {
  switch (m) {
    case EraMode::kCeCd: return "era-ce-cd";
    case EraMode::kSeSd: return "era-se-sd";
    case EraMode::kSeCd: return "era-se-cd";
    case EraMode::kCeSd: return "era-ce-sd";
  }
  return "era-?";
}

[[nodiscard]] constexpr bool client_encodes(EraMode m) noexcept {
  return m == EraMode::kCeCd || m == EraMode::kCeSd;
}
[[nodiscard]] constexpr bool client_decodes(EraMode m) noexcept {
  return m == EraMode::kCeCd || m == EraMode::kSeCd;
}

class ErasureEngine final : public Engine {
 public:
  /// The codec must outlive the engine. Server-side modes additionally
  /// require every server to have ServerEcContext enabled (see
  /// Cluster::enable_server_ec). `hedge` configures the hedged-read /
  /// load-aware Get path; the default keeps the legacy byte-exact path.
  /// `pack` configures the batched small-object write path (stripe packing
  /// + group commit); the default (threshold 0) keeps every Set on the
  /// legacy per-key path. Packing requires client-side encode AND decode
  /// (kCeCd) — other modes ignore it.
  ErasureEngine(EngineContext ctx, const ec::Codec& codec,
                ec::CostModel cost, EraMode mode, ArpeParams arpe = {},
                HedgeParams hedge = {}, PackParams pack = {});

  [[nodiscard]] std::string_view name() const noexcept override {
    return to_string(mode_);
  }
  [[nodiscard]] std::size_t fault_tolerance() const noexcept override {
    return codec_->m();
  }
  [[nodiscard]] EraMode mode() const noexcept { return mode_; }
  [[nodiscard]] const ec::Codec& codec() const noexcept { return *codec_; }
  [[nodiscard]] const HedgeParams& hedge() const noexcept { return hedge_; }
  [[nodiscard]] const PackParams& pack() const noexcept { return pack_; }
  /// Packing is live for this engine (configured on, and the mode is
  /// client-encode + client-decode).
  [[nodiscard]] bool packing_active() const noexcept {
    return pack_.enabled() && mode_ == EraMode::kCeCd;
  }
  [[nodiscard]] const NodeLoadTracker* load_tracker()
      const noexcept override {
    return &load_;
  }

 protected:
  sim::Task<Status> do_set(kv::Key key, SharedBytes value,
                           OpPhases* phases) override;
  sim::Task<Result<Bytes>> do_get(kv::Key key, OpPhases* phases) override;

  /// Deletes every fragment (and any staged full copy) of the key.
  sim::Task<Status> do_del(kv::Key key) override;

 private:
  // Set paths.
  sim::Task<Status> set_client_encode(kv::Key key, SharedBytes value,
                                      OpPhases* phases);
  sim::Task<Status> set_server_encode(kv::Key key, SharedBytes value,
                                      OpPhases* phases);
  // Get paths.
  sim::Task<Result<Bytes>> get_client_decode(kv::Key key, OpPhases* phases);
  sim::Task<Result<Bytes>> get_server_decode(kv::Key key, OpPhases* phases);

  // ---- Packed-stripe (batched small-object) write path ----------------

  /// One stripe being filled or committed. shared_ptr-held: the group
  /// commit coroutine, the seal timer and every waiting Set all reference
  /// it, and any of them can outlive the others.
  struct StripeState {
    explicit StripeState(sim::Simulator& s) : done(s) {}
    kv::Key skey;                 ///< synthetic stripe base key
    Bytes buffer;                 ///< packed records (materialize mode)
    std::size_t used = 0;         ///< payload bytes appended so far
    std::vector<kv::StripeIndexEntry> records;
    std::vector<SharedBytes> values;  ///< staged copy per record
    bool sealed = false;
    sim::Event done;              ///< set at durability (or failure)
    Status result = Status::Ok();
  };

  /// Set router when packing is active: small values append into stripes;
  /// large values take the per-key path and unlink any stale locator left
  /// by an earlier packed life of the key.
  sim::Task<Status> set_routed_packed(kv::Key key, SharedBytes value,
                                      OpPhases* phases);

  /// Appends the record into the primary's active stripe (sealing and
  /// rolling over when it would not fit) and waits for that stripe's group
  /// commit to reach durability.
  sim::Task<Status> set_packed(kv::Key key, SharedBytes value,
                               OpPhases* phases);

  /// Resolves a Get through the stripe locator directory: staging-map hit,
  /// else locator query at the key's directory owners, then a sub-slot
  /// fragment-range fetch (whole-stripe degraded decode when owners of the
  /// needed range are unreachable). Falls back to the legacy per-key path
  /// when no locator exists.
  sim::Task<Result<Bytes>> get_packed(kv::Key key, OpPhases* phases);

  /// Detaches the active stripe of `primary` and spawns its group commit.
  void seal_stripe(std::size_t primary, bool by_timer);

  /// Group-commit timer: seals `st` after pack().group_commit_interval if
  /// a capacity seal has not beaten it to it.
  static sim::Task<void> stripe_timer(ErasureEngine* self,
                                      std::shared_ptr<StripeState> st,
                                      std::size_t primary);

  /// Encodes the sealed stripe once, fans fragments + locator installs
  /// out, resolves durability and wakes every waiting Set.
  static sim::Task<void> commit_stripe(ErasureEngine* self,
                                       std::shared_ptr<StripeState> st);

  /// Removes the key's locator entry from its live directory owners
  /// (overwrite-by-large-value and deletes).
  sim::Task<void> unlink_locator(kv::Key key,
                                 std::vector<sim::Future<kv::Response>>* out);

  /// Late-binding variant of get_client_decode, taken when hedge().enabled():
  /// issues the (load-ranked) primary k fetches plus up to Δ delayed hedges,
  /// completes on the first k decodable arrivals, and cancels stragglers
  /// through the RPC stale-response machinery.
  sim::Task<Result<Bytes>> get_client_decode_hedged(kv::Key key,
                                                    OpPhases* phases);

  /// Shared per-op state between the hedged Get, its spawned per-fetch
  /// collectors and the hedge-firer. shared_ptr-held: collectors of
  /// never-resolving futures (crash-after-send with no RpcPolicy) may
  /// outlive the op.
  struct HedgeFetchState {
    HedgeFetchState(sim::Simulator& sim, std::size_t n)
        : progress(sim), frag(n), have(n, false), available(n, false),
          attempted(n, false), hedge_slot(n, false), rpc_of_slot(n, 0),
          owner(n, 0) {}
    sim::Condition progress;            ///< notified on every fetch event
    std::vector<SharedBytes> frag;      ///< arrived fragment per slot
    std::vector<bool> have;             ///< frag[slot] is valid
    std::vector<bool> available;        ///< slot not (yet) known-failed
    std::vector<bool> attempted;        ///< a fetch was issued for slot
    std::vector<bool> hedge_slot;       ///< that fetch was a hedge
    std::vector<std::uint64_t> rpc_of_slot;  ///< live unguarded rpc id or 0
    std::vector<std::size_t> owner;     ///< slot -> server index
    std::optional<kv::ChunkInfo> meta;
    std::size_t ok = 0;                 ///< fragments arrived
    std::size_t outstanding = 0;        ///< fetches in flight
    StatusCode worst = StatusCode::kNotFound;
    bool failed_any = false;            ///< a fetch failed since last check
    bool op_done = false;               ///< the op has completed/abandoned
  };

  /// Awaits one fetch and folds the outcome into the shared state.
  static sim::Task<void> hedged_collector(ErasureEngine* self,
                                          std::shared_ptr<HedgeFetchState> st,
                                          std::size_t slot, bool is_hedge,
                                          sim::Future<kv::Response> fut,
                                          SimTime issued_at);

  /// Sleeps the hedge delay, then fires up to Δ extra fetches if the op is
  /// still short of k arrivals (borrowing spare ARPE buffers; suppressed
  /// when the pool is tight).
  static sim::Task<void> hedge_firer(ErasureEngine* self, kv::Key key,
                                     std::shared_ptr<HedgeFetchState> st,
                                     std::vector<std::size_t> hedge_slots,
                                     obs::TraceContext trace,
                                     std::uint64_t trace_tid);

  /// Issues one fragment fetch for `slot` and spawns its collector.
  void issue_hedged_fetch(const kv::Key& key,
                          const std::shared_ptr<HedgeFetchState>& st,
                          std::size_t slot, bool is_hedge,
                          const obs::TraceContext& trace);

  /// Candidate slot order by per-server load score (empty = natural order:
  /// tracker cold, or load-aware selection off and `force` false).
  [[nodiscard]] std::vector<std::size_t> load_preference(const kv::Key& key,
                                                         bool randomize,
                                                         bool force);

  /// Effective hedge delay: max of the fixed delay and the engine's own
  /// running get-latency quantile (when delay_quantile is set).
  [[nodiscard]] SimDur hedge_delay() const noexcept;

  /// First live owner among the key's n slots (for SE/SD targets), paying
  /// T_check when the designated one is down. `degraded` reports whether a
  /// dead owner had to be skipped so the caller can bump the right
  /// per-verb counter; nullopt slot if all n are dead.
  struct LiveSlot {
    std::optional<std::size_t> slot;
    bool degraded = false;
  };
  sim::Task<LiveSlot> pick_live_slot(kv::Key key);

  const ec::Codec* codec_;
  ec::CostModel cost_;
  EraMode mode_;
  HedgeParams hedge_;
  PackParams pack_;
  /// Active (filling) stripe per primary server index. Sealed stripes are
  /// detached and live on only through their commit coroutine.
  std::unordered_map<std::size_t, std::shared_ptr<StripeState>> active_;
  /// Read-your-writes staging: key -> value appended to a stripe that has
  /// not reached durability yet. Erased at commit only when the pointer
  /// still matches (a newer overwrite keeps its own entry).
  std::unordered_map<kv::Key, SharedBytes> staging_;
  std::uint64_t stripe_seq_ = 0;
  std::uint64_t fill_permille_sum_ = 0;  ///< feeds stripe_fill_x1000 mean
  /// Per-server queue-depth/RTT EWMAs, fed passively by every response this
  /// engine sees (piggybacked Server::queue_depth). Only consulted when a
  /// read path asks for a load preference.
  NodeLoadTracker load_;

  /// Reusable buffers for get_client_decode's materialize step. The region
  /// that fills and consumes them is synchronous (no co_await between the
  /// two), so one scratch per engine is race-free even with many in-flight
  /// ops; reuse makes the fused decode path allocation-free per op once the
  /// vectors reach steady-state capacity.
  struct DecodeScratch {
    std::vector<Bytes> storage;
    std::vector<ByteSpan> spans;
    std::vector<bool> present;
  };
  DecodeScratch scratch_;
};

}  // namespace hpres::resilience
