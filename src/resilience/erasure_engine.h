// Online erasure-coding engine: the paper's primary contribution
// (Section IV). One engine instance implements one of the four offload
// designs, combining client- or server-side encode with client- or
// server-side decode:
//
//   Era-CE-CD  client encodes + distributes; client aggregates + decodes
//   Era-SE-SD  server encodes + distributes; server aggregates + decodes
//   Era-SE-CD  server encodes; client aggregates + decodes (hybrid)
//   Era-CE-SD  client encodes; server aggregates + decodes (hybrid,
//              included for completeness; the paper sets it aside)
#pragma once

#include "ec/chunker.h"
#include "ec/codec.h"
#include "ec/cost_model.h"
#include "resilience/engine.h"

namespace hpres::resilience {

enum class EraMode : std::uint8_t { kCeCd, kSeSd, kSeCd, kCeSd };

[[nodiscard]] constexpr std::string_view to_string(EraMode m) noexcept {
  switch (m) {
    case EraMode::kCeCd: return "era-ce-cd";
    case EraMode::kSeSd: return "era-se-sd";
    case EraMode::kSeCd: return "era-se-cd";
    case EraMode::kCeSd: return "era-ce-sd";
  }
  return "era-?";
}

[[nodiscard]] constexpr bool client_encodes(EraMode m) noexcept {
  return m == EraMode::kCeCd || m == EraMode::kCeSd;
}
[[nodiscard]] constexpr bool client_decodes(EraMode m) noexcept {
  return m == EraMode::kCeCd || m == EraMode::kSeCd;
}

class ErasureEngine final : public Engine {
 public:
  /// The codec must outlive the engine. Server-side modes additionally
  /// require every server to have ServerEcContext enabled (see
  /// Cluster::enable_server_ec).
  ErasureEngine(EngineContext ctx, const ec::Codec& codec,
                ec::CostModel cost, EraMode mode, ArpeParams arpe = {});

  [[nodiscard]] std::string_view name() const noexcept override {
    return to_string(mode_);
  }
  [[nodiscard]] std::size_t fault_tolerance() const noexcept override {
    return codec_->m();
  }
  [[nodiscard]] EraMode mode() const noexcept { return mode_; }
  [[nodiscard]] const ec::Codec& codec() const noexcept { return *codec_; }

 protected:
  sim::Task<Status> do_set(kv::Key key, SharedBytes value,
                           OpPhases* phases) override;
  sim::Task<Result<Bytes>> do_get(kv::Key key, OpPhases* phases) override;

  /// Deletes every fragment (and any staged full copy) of the key.
  sim::Task<Status> do_del(kv::Key key) override;

 private:
  // Set paths.
  sim::Task<Status> set_client_encode(kv::Key key, SharedBytes value,
                                      OpPhases* phases);
  sim::Task<Status> set_server_encode(kv::Key key, SharedBytes value,
                                      OpPhases* phases);
  // Get paths.
  sim::Task<Result<Bytes>> get_client_decode(kv::Key key, OpPhases* phases);
  sim::Task<Result<Bytes>> get_server_decode(kv::Key key, OpPhases* phases);

  /// First live owner among the key's n slots (for SE/SD targets), paying
  /// T_check when the designated one is down. `degraded` reports whether a
  /// dead owner had to be skipped so the caller can bump the right
  /// per-verb counter; nullopt slot if all n are dead.
  struct LiveSlot {
    std::optional<std::size_t> slot;
    bool degraded = false;
  };
  sim::Task<LiveSlot> pick_live_slot(kv::Key key);

  const ec::Codec* codec_;
  ec::CostModel cost_;
  EraMode mode_;

  /// Reusable buffers for get_client_decode's materialize step. The region
  /// that fills and consumes them is synchronous (no co_await between the
  /// two), so one scratch per engine is race-free even with many in-flight
  /// ops; reuse makes the fused decode path allocation-free per op once the
  /// vectors reach steady-state capacity.
  struct DecodeScratch {
    std::vector<Bytes> storage;
    std::vector<ByteSpan> spans;
    std::vector<bool> present;
  };
  DecodeScratch scratch_;
};

}  // namespace hpres::resilience
