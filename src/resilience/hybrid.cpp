#include "resilience/hybrid.h"

namespace hpres::resilience {

HybridEngine::HybridEngine(EngineContext ctx, const ec::Codec& codec,
                           ec::CostModel cost, std::uint32_t rep_factor,
                           std::size_t threshold_bytes, EraMode mode,
                           ArpeParams arpe)
    : Engine(ctx, arpe),
      replication_(ctx, rep_factor, arpe),
      erasure_(ctx, codec, cost, mode, arpe),
      threshold_bytes_(threshold_bytes) {}

sim::Task<Status> HybridEngine::do_set(kv::Key key, SharedBytes value,
                                       OpPhases* phases) {
  (void)phases;  // sub-engines keep their own phase accounting
  const std::size_t size = value ? value->size() : 0;
  if (size < threshold_bytes_) {
    co_return co_await replication_.set(std::move(key), std::move(value));
  }
  co_return co_await erasure_.set(std::move(key), std::move(value));
}

sim::Task<Result<Bytes>> HybridEngine::do_get(kv::Key key,
                                              OpPhases* phases) {
  (void)phases;
  // Probe the replication path first: for below-threshold values this is
  // the single-round-trip hit; for large values it is a cheap miss.
  Result<Bytes> replicated = co_await replication_.get(key);
  if (replicated.ok() ||
      replicated.status().code() != StatusCode::kNotFound) {
    co_return replicated;
  }
  co_return co_await erasure_.get(std::move(key));
}

sim::Task<Status> HybridEngine::do_del(kv::Key key) {
  const Status rep = co_await replication_.del(key);
  const Status era = co_await erasure_.del(std::move(key));
  co_return rep.ok() || era.ok() ? Status::Ok()
                                 : Status{StatusCode::kNotFound};
}

}  // namespace hpres::resilience
