#include "resilience/hybrid.h"

namespace hpres::resilience {

HybridEngine::HybridEngine(EngineContext ctx, const ec::Codec& codec,
                           ec::CostModel cost, std::uint32_t rep_factor,
                           std::size_t threshold_bytes, EraMode mode,
                           ArpeParams arpe)
    : Engine(ctx, arpe),
      replication_(ctx, rep_factor, arpe),
      erasure_(ctx, codec, cost, mode, arpe),
      threshold_bytes_(threshold_bytes) {
  // Sub-engine ops run nested under this engine's op: they share one lane
  // pool (no Perfetto lane collisions between concurrent parent and child
  // spans) and skip the LatencyRecorder — the hybrid op records once.
  replication_.use_lane_pool(&lane_pool());
  erasure_.use_lane_pool(&lane_pool());
}

sim::Task<Status> HybridEngine::do_set(kv::Key key, SharedBytes value,
                                       OpPhases* phases) {
  // Sub-engines keep their own phase accounting; the nested call continues
  // this op's trace and reports back the degraded flag.
  const std::size_t size = value ? value->size() : 0;
  if (size < threshold_bytes_) {
    co_return co_await replication_.set_nested(
        std::move(key), std::move(value), phases->trace, &phases->degraded);
  }
  co_return co_await erasure_.set_nested(std::move(key), std::move(value),
                                         phases->trace, &phases->degraded);
}

sim::Task<Result<Bytes>> HybridEngine::do_get(kv::Key key,
                                              OpPhases* phases) {
  // Probe the replication path first: for below-threshold values this is
  // the single-round-trip hit; for large values it is a cheap miss.
  bool probe_degraded = false;
  Result<Bytes> replicated =
      co_await replication_.get_nested(key, phases->trace, &probe_degraded);
  phases->degraded |= probe_degraded;
  if (replicated.ok() ||
      replicated.status().code() != StatusCode::kNotFound) {
    co_return replicated;
  }
  bool era_degraded = false;
  Result<Bytes> coded =
      co_await erasure_.get_nested(std::move(key), phases->trace,
                                   &era_degraded);
  phases->degraded |= era_degraded;
  co_return coded;
}

sim::Task<Status> HybridEngine::do_del(kv::Key key) {
  const Status rep = co_await replication_.del(key);
  const Status era = co_await erasure_.del(std::move(key));
  co_return rep.ok() || era.ok() ? Status::Ok()
                                 : Status{StatusCode::kNotFound};
}

}  // namespace hpres::resilience
