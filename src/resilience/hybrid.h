// Hybrid replication / erasure-coding engine — the scheme sketched in the
// paper's conclusion ("explore hybrid erasure-coding/replication schemes
// with the goal of maximizing overall performance and storage efficiency
// for different workload data access patterns").
//
// Values below the threshold are replicated (chunking sub-KB values into
// sub-fragment crumbs buys nothing and multiplies per-message overheads);
// values at or above it are erasure coded (where the bandwidth and memory
// savings dominate). Reads probe the replication path first — one cheap
// round trip — and fall back to fragment aggregation.
#pragma once

#include "resilience/erasure_engine.h"
#include "resilience/replication.h"

namespace hpres::resilience {

class HybridEngine final : public Engine {
 public:
  /// Both sub-schemes tolerate failures independently; the engine's
  /// overall tolerance is the weaker of the two, so configure
  /// rep_factor = m + 1 for a uniform guarantee.
  HybridEngine(EngineContext ctx, const ec::Codec& codec, ec::CostModel cost,
               std::uint32_t rep_factor, std::size_t threshold_bytes,
               EraMode mode = EraMode::kCeCd, ArpeParams arpe = {});

  [[nodiscard]] std::string_view name() const noexcept override {
    return "hybrid";
  }
  [[nodiscard]] std::size_t fault_tolerance() const noexcept override {
    return std::min<std::size_t>(replication_.fault_tolerance(),
                                 erasure_.fault_tolerance());
  }
  [[nodiscard]] std::size_t threshold_bytes() const noexcept {
    return threshold_bytes_;
  }

  /// Sub-engine stats (ops routed to each scheme).
  [[nodiscard]] const EngineStats& replication_stats() const noexcept {
    return replication_.stats();
  }
  [[nodiscard]] const EngineStats& erasure_stats() const noexcept {
    return erasure_.stats();
  }

 protected:
  sim::Task<Status> do_set(kv::Key key, SharedBytes value,
                           OpPhases* phases) override;
  sim::Task<Result<Bytes>> do_get(kv::Key key, OpPhases* phases) override;
  sim::Task<Status> do_del(kv::Key key) override;

 private:
  AsyncReplicationEngine replication_;
  ErasureEngine erasure_;
  std::size_t threshold_bytes_;
};

}  // namespace hpres::resilience
