#include "resilience/repair.h"

#include <algorithm>
#include <set>

namespace hpres::resilience {

sim::Task<Result<std::vector<kv::Key>>> RepairCoordinator::discover(
    std::size_t via_server_index) {
  if (!ctx_.membership->up(via_server_index)) {
    co_return Status{StatusCode::kUnavailable, "scan target is down"};
  }
  kv::Request req;
  req.verb = kv::Verb::kScan;
  const kv::Response resp = co_await ctx_.client->invoke(
      (*ctx_.server_nodes)[via_server_index], std::move(req));
  if (resp.code != StatusCode::kOk) co_return Status{resp.code};
  co_return resp.keys;
}

sim::Task<Status> RepairCoordinator::repair_key(kv::Key key) {
  ++stats_.keys_scanned;
  const std::size_t k = codec_->k();
  const std::size_t n = codec_->n();
  obs::Tracer* const tr = tracer();
  // Each key's repair is one causal trace: the probe/fetch/replace RPCs and
  // their server handling carry it, so a repair storm is attributable in
  // the trace viewer just like a client op.
  const obs::TraceContext rtrace{tr != nullptr ? tr->new_trace_id() : 0,
                                 trace_tid(), 0};

  // Phase 1 — presence probe: head-only Gets, no fragment payloads move.
  std::vector<bool> owner_alive(n, false);
  std::vector<bool> present(n, false);
  std::optional<kv::ChunkInfo> meta;
  const SimTime probe_t0 = ctx_.sim->now();
  {
    std::vector<sim::Future<kv::Response>> pending(n);
    for (std::size_t slot = 0; slot < n; ++slot) {
      const std::size_t owner = ctx_.ring->slot_index(key, slot);
      if (!ctx_.membership->up(owner)) continue;
      owner_alive[slot] = true;
      kv::Request req;
      req.verb = kv::Verb::kGet;
      req.key = kv::chunk_key(key, slot);
      req.head_only = true;
      req.trace = rtrace;
      pending[slot] = ctx_.client->call_async((*ctx_.server_nodes)[owner],
                                              std::move(req));
    }
    for (std::size_t slot = 0; slot < n; ++slot) {
      if (!pending[slot].valid()) continue;
      const kv::Response resp = co_await pending[slot].wait();
      if (resp.code != StatusCode::kOk) continue;
      present[slot] = true;
      if (resp.chunk) meta = resp.chunk;
    }
  }
  if (tr != nullptr) {
    tr->complete(ctx_.trace_pid, trace_tid(), "repair/probe", "repair",
                 probe_t0, ctx_.sim->now() - probe_t0, rtrace.trace_id);
  }
  if (ctx_.flight != nullptr) {
    ctx_.flight->record(
        ctx_.sim->now(), ctx_.client->id(), obs::FlightEventType::kRepairPhase,
        static_cast<std::uint64_t>(ctx_.sim->now() - probe_t0), 0,
        /*code=*/0);
  }
  const auto present_count = static_cast<std::size_t>(
      std::count(present.begin(), present.end(), true));
  if (present_count < k || !meta) {
    ++stats_.unrepairable_keys;
    if (purge_orphans_ && present_count > 0) {
      co_await purge_orphan(std::move(key), std::move(present));
    }
    co_return Status{StatusCode::kTooManyFailures,
                     "fewer than k fragments survive"};
  }

  std::vector<std::size_t> rebuild;
  for (std::size_t slot = 0; slot < n; ++slot) {
    if (owner_alive[slot] && !present[slot]) rebuild.push_back(slot);
  }
  if (rebuild.empty()) co_return Status::Ok();

  const std::size_t value_size = meta->original_size;
  const ec::ChunkLayout layout =
      ec::make_layout(value_size, k, codec_->alignment());

  // Phase 2 — choose the fetch set: the codec's minimal repair group for a
  // single loss with repair locality, otherwise any k survivors.
  std::optional<std::vector<std::size_t>> local_sources;
  if (rebuild.size() == 1) {
    local_sources = codec_->minimal_repair_sources(rebuild[0], present);
  }
  std::vector<std::size_t> fetch;
  if (local_sources) {
    fetch = *local_sources;
  } else {
    for (std::size_t slot = 0; slot < n && fetch.size() < k; ++slot) {
      if (present[slot]) fetch.push_back(slot);
    }
  }

  std::vector<SharedBytes> fetched(n);
  const SimTime fetch_t0 = ctx_.sim->now();
  {
    std::vector<sim::Future<kv::Response>> pending;
    pending.reserve(fetch.size());
    for (const std::size_t slot : fetch) {
      kv::Request req;
      req.verb = kv::Verb::kGet;
      req.key = kv::chunk_key(key, slot);
      req.trace = rtrace;
      const std::size_t owner = ctx_.ring->slot_index(key, slot);
      pending.push_back(ctx_.client->call_async((*ctx_.server_nodes)[owner],
                                                std::move(req)));
    }
    for (std::size_t i = 0; i < fetch.size(); ++i) {
      kv::Response resp = co_await pending[i].wait();
      if (resp.code != StatusCode::kOk) {
        co_return Status{StatusCode::kInternal,
                         "fragment vanished between probe and fetch"};
      }
      fetched[fetch[i]] = std::move(resp.value);
    }
    stats_.fragments_read += fetch.size();
    stats_.bytes_read += fetch.size() * layout.fragment_size;
  }
  if (tr != nullptr) {
    tr->complete(ctx_.trace_pid, trace_tid(), "repair/fetch", "repair",
                 fetch_t0, ctx_.sim->now() - fetch_t0, rtrace.trace_id);
  }
  if (ctx_.flight != nullptr) {
    ctx_.flight->record(
        ctx_.sim->now(), ctx_.client->id(), obs::FlightEventType::kRepairPhase,
        static_cast<std::uint64_t>(ctx_.sim->now() - fetch_t0), 0,
        /*code=*/1);
  }

  // Phase 3 — rebuild. Compute cost scales with the bytes actually read
  // (the locality saving the paper's future work is after).
  const SimDur reconstruct_ns = cost_.decode_ns(
      fetch.size() * layout.fragment_size,
      static_cast<unsigned>(rebuild.size()));
  co_await ctx_.client->cpu().execute(reconstruct_ns);
  if (tr != nullptr) {
    tr->complete(ctx_.trace_pid, trace_tid(), "repair/reconstruct", "repair",
                 ctx_.sim->now() - reconstruct_ns, reconstruct_ns,
                 rtrace.trace_id);
  }
  if (ctx_.flight != nullptr) {
    ctx_.flight->record(
        ctx_.sim->now(), ctx_.client->id(), obs::FlightEventType::kRepairPhase,
        static_cast<std::uint64_t>(reconstruct_ns), 0, /*code=*/2);
  }

  std::vector<SharedBytes> rebuilt(n);
  if (ctx_.materialize) {
    if (local_sources) {
      Bytes out(layout.fragment_size);
      std::vector<ConstByteSpan> sources;
      sources.reserve(fetch.size());
      for (const std::size_t slot : fetch) sources.push_back(*fetched[slot]);
      const Status s =
          codec_->rebuild_from_sources(rebuild[0], sources, out);
      if (!s.ok()) co_return s;
      rebuilt[rebuild[0]] = make_shared_bytes(std::move(out));
    } else {
      std::vector<Bytes> storage(n, Bytes(layout.fragment_size));
      std::vector<bool> have(n, false);
      for (std::size_t slot = 0; slot < n; ++slot) {
        if (fetched[slot]) {
          storage[slot] = *fetched[slot];
          have[slot] = true;
        }
      }
      std::vector<ByteSpan> spans(storage.begin(), storage.end());
      const Status s = codec_->reconstruct(spans, have);
      if (!s.ok()) co_return s;
      for (const std::size_t slot : rebuild) {
        rebuilt[slot] = make_shared_bytes(std::move(storage[slot]));
      }
    }
  } else {
    for (const std::size_t slot : rebuild) {
      rebuilt[slot] = zero_bytes(layout.fragment_size);
    }
  }

  // Phase 4 — re-place rebuilt fragments on their designated owners.
  const SimTime replace_t0 = ctx_.sim->now();
  std::vector<sim::Future<kv::Response>> writes;
  writes.reserve(rebuild.size());
  for (const std::size_t slot : rebuild) {
    kv::Request req;
    req.verb = kv::Verb::kSet;
    req.key = kv::chunk_key(key, slot);
    req.value = rebuilt[slot];
    req.chunk = kv::ChunkInfo{value_size, static_cast<std::uint32_t>(slot),
                              static_cast<std::uint16_t>(k),
                              static_cast<std::uint16_t>(codec_->m())};
    req.trace = rtrace;
    const std::size_t owner = ctx_.ring->slot_index(key, slot);
    writes.push_back(
        ctx_.client->call_async((*ctx_.server_nodes)[owner], std::move(req)));
  }
  StatusCode worst = StatusCode::kOk;
  for (const auto& f : writes) {
    const kv::Response resp = co_await f.wait();
    if (resp.code != StatusCode::kOk) worst = resp.code;
  }
  if (tr != nullptr) {
    tr->complete(ctx_.trace_pid, trace_tid(), "repair/replace", "repair",
                 replace_t0, ctx_.sim->now() - replace_t0, rtrace.trace_id);
  }
  if (ctx_.flight != nullptr) {
    ctx_.flight->record(
        ctx_.sim->now(), ctx_.client->id(), obs::FlightEventType::kRepairPhase,
        static_cast<std::uint64_t>(ctx_.sim->now() - replace_t0), 0,
        /*code=*/3);
  }
  if (worst == StatusCode::kOk) {
    ++stats_.keys_repaired;
    if (local_sources) ++stats_.local_repairs;
    stats_.fragments_rebuilt += rebuild.size();
    stats_.bytes_rebuilt += rebuild.size() * layout.fragment_size;
  }
  co_return Status{worst};
}

sim::Task<void> RepairCoordinator::purge_orphan(kv::Key key,
                                                std::vector<bool> present) {
  const std::size_t n = codec_->n();
  // A staged full copy on any live owner means the key can still be
  // re-distributed (server-side encode mid-flight): leave it alone.
  for (std::size_t slot = 0; slot < n; ++slot) {
    const std::size_t owner = ctx_.ring->slot_index(key, slot);
    if (!ctx_.membership->up(owner)) continue;
    kv::Request probe;
    probe.verb = kv::Verb::kGet;
    probe.key = key;
    probe.head_only = true;
    const kv::Response resp = co_await ctx_.client->invoke(
        (*ctx_.server_nodes)[owner], std::move(probe));
    if (resp.code == StatusCode::kOk) co_return;
    break;  // one stager probe suffices; the stager is the first live owner
  }
  ++stats_.orphaned_keys;
  std::vector<sim::Future<kv::Response>> deletes;
  deletes.reserve(n);
  for (std::size_t slot = 0; slot < n; ++slot) {
    if (!present[slot]) continue;
    kv::Request req;
    req.verb = kv::Verb::kDelete;
    req.key = kv::chunk_key(key, slot);
    const std::size_t owner = ctx_.ring->slot_index(key, slot);
    deletes.push_back(
        ctx_.client->call_async((*ctx_.server_nodes)[owner], std::move(req)));
  }
  for (const auto& f : deletes) {
    const kv::Response resp = co_await f.wait();
    if (resp.code == StatusCode::kOk) ++stats_.orphan_fragments_purged;
  }
}

sim::Task<Status> RepairCoordinator::repair_all() {
  std::set<kv::Key> keys;
  for (std::size_t s = 0; s < ctx_.membership->size(); ++s) {
    if (!ctx_.membership->up(s)) continue;
    Result<std::vector<kv::Key>> found = co_await discover(s);
    if (!found.ok()) continue;
    keys.insert(found->begin(), found->end());
  }
  StatusCode worst = StatusCode::kOk;
  for (const kv::Key& key : keys) {
    const Status s = co_await repair_key(key);
    if (!s.ok()) worst = s.code();
  }
  co_return Status{worst};
}

}  // namespace hpres::resilience
