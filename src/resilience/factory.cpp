#include "resilience/factory.h"

#include <cassert>

namespace hpres::resilience {

std::unique_ptr<Engine> make_engine(Design design, EngineContext ctx,
                                    std::uint32_t rep_factor,
                                    const ec::Codec* codec,
                                    ec::CostModel cost, ArpeParams arpe,
                                    HedgeParams hedge, PackParams pack) {
  switch (design) {
    case Design::kNoRep:
      return std::make_unique<AsyncReplicationEngine>(ctx, 1, arpe);
    case Design::kSyncRep:
      return std::make_unique<SyncReplicationEngine>(ctx, rep_factor, arpe);
    case Design::kAsyncRep:
      return std::make_unique<AsyncReplicationEngine>(ctx, rep_factor, arpe);
    case Design::kEraCeCd:
    case Design::kEraSeSd:
    case Design::kEraSeCd:
    case Design::kEraCeSd: {
      assert(codec != nullptr && "erasure designs require a codec");
      const EraMode mode = design == Design::kEraCeCd   ? EraMode::kCeCd
                           : design == Design::kEraSeSd ? EraMode::kSeSd
                           : design == Design::kEraSeCd ? EraMode::kSeCd
                                                        : EraMode::kCeSd;
      return std::make_unique<ErasureEngine>(ctx, *codec, cost, mode, arpe,
                                             hedge, pack);
    }
  }
  return nullptr;
}

}  // namespace hpres::resilience
