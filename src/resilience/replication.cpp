#include "resilience/replication.h"

#include <algorithm>
#include <cassert>

namespace hpres::resilience {

namespace {

kv::Request set_request(kv::Key key, SharedBytes value) {
  kv::Request r;
  r.verb = kv::Verb::kSet;
  r.key = std::move(key);
  r.value = std::move(value);
  return r;
}

kv::Request get_request(kv::Key key) {
  kv::Request r;
  r.verb = kv::Verb::kGet;
  r.key = std::move(key);
  return r;
}

}  // namespace

ReplicationBase::ReplicationBase(EngineContext ctx, std::uint32_t factor,
                                 ArpeParams arpe)
    : Engine(ctx, arpe), factor_(factor) {
  assert(factor_ >= 1);
  assert(factor_ <= ring().num_servers() &&
         "replication factor exceeds cluster size");
}

std::optional<std::size_t> ReplicationBase::first_live_slot(
    const kv::Key& key, bool* checked) const {
  *checked = false;
  for (std::size_t slot = 0; slot < factor_; ++slot) {
    const std::size_t owner = ring().slot_index(key, slot);
    if (membership().up(owner)) return slot;
    *checked = true;  // primary (or an earlier replica) was down
  }
  return std::nullopt;
}

sim::Task<Result<Bytes>> ReplicationBase::do_get(kv::Key key,
                                                 OpPhases* phases) {
  bool checked = false;
  const std::optional<std::size_t> slot = first_live_slot(key, &checked);
  if (checked) {
    // T_check: identify a live replica before reading (Equation 4).
    ++stats().degraded_gets;
    phases->degraded = true;
    co_await sim().delay(membership().check_cost_ns());
  }
  if (!slot) {
    co_return Status{StatusCode::kUnavailable, "all replicas down"};
  }
  const net::NodeId server = node_of(ring().slot_index(key, *slot));
  const SimDur issue_ns = issue_cost(key.size());
  phases->request_ns += issue_ns;
  const SimTime t0 = sim().now();
  kv::Request req = get_request(std::move(key));
  req.trace = phases->trace;
  const kv::Response resp = co_await client().invoke(server, std::move(req));
  if (obs::Tracer* const tr = tracer(); tr != nullptr) {
    tr->complete(trace_pid(), phases->trace_tid, "get/request", "engine", t0,
                 issue_ns, phases->trace.trace_id);
    tr->complete(trace_pid(), phases->trace_tid, "get/fetch", "engine",
                 t0 + issue_ns,
                 std::max<SimDur>(0, sim().now() - t0 - issue_ns),
                 phases->trace.trace_id);
  }
  if (resp.code != StatusCode::kOk) co_return Status{resp.code};
  co_return resp.value ? Bytes(*resp.value) : Bytes{};
}

sim::Task<Status> ReplicationBase::do_del(kv::Key key) {
  std::vector<sim::Future<kv::Response>> pending;
  pending.reserve(factor_);
  for (std::size_t slot = 0; slot < factor_; ++slot) {
    const std::size_t owner = ring().slot_index(key, slot);
    if (!membership().up(owner)) continue;
    kv::Request req;
    req.verb = kv::Verb::kDelete;
    req.key = key;
    pending.push_back(client().call_async(node_of(owner), std::move(req)));
  }
  std::size_t deleted = 0;
  for (const auto& f : pending) {
    const kv::Response resp = co_await f.wait();
    if (resp.code == StatusCode::kOk) ++deleted;
  }
  co_return deleted > 0 ? Status::Ok() : Status{StatusCode::kNotFound};
}

sim::Task<Status> SyncReplicationEngine::do_set(kv::Key key,
                                                SharedBytes value,
                                                OpPhases* phases) {
  // Blocking APIs: each replica write completes before the next is issued,
  // the F * (L + D/B) cost of Equation 2.
  StatusCode worst = StatusCode::kOk;
  std::size_t stored = 0;
  bool bounced = false;
  obs::Tracer* const tr = tracer();
  for (std::size_t slot = 0; slot < factor_; ++slot) {
    const std::size_t owner = ring().slot_index(key, slot);
    if (!membership().up(owner)) continue;
    const SimDur issue_ns = issue_cost(value ? value->size() : 0);
    phases->request_ns += issue_ns;
    const SimTime t0 = sim().now();
    kv::Request req = set_request(key, value);
    req.trace = phases->trace;
    const kv::Response resp =
        co_await client().invoke(node_of(owner), std::move(req));
    if (tr != nullptr) {
      tr->complete(trace_pid(), phases->trace_tid, "set/request", "engine",
                   t0, issue_ns, phases->trace.trace_id);
      tr->complete(trace_pid(), phases->trace_tid, "set/fanout", "engine",
                   t0 + issue_ns,
                   std::max<SimDur>(0, sim().now() - t0 - issue_ns),
                   phases->trace.trace_id);
    }
    if (resp.code == StatusCode::kOk) {
      ++stored;
    } else {
      worst = resp.code;
      if (resp.code == StatusCode::kWrongEpoch) bounced = true;
    }
  }
  // A stale-epoch bounce must surface even when other replicas stored (or
  // none did): the whole op re-runs under the refreshed ring.
  if (bounced) {
    co_return Status{StatusCode::kWrongEpoch, "stale placement epoch"};
  }
  if (stored == 0) co_return Status{StatusCode::kUnavailable, "no replica stored"};
  co_return Status{worst};
}

sim::Task<Status> AsyncReplicationEngine::do_set(kv::Key key,
                                                 SharedBytes value,
                                                 OpPhases* phases) {
  // Non-blocking APIs: all F replica writes go out back-to-back and their
  // response waits overlap — Equation 6's max over replicas.
  std::vector<sim::Future<kv::Response>> pending;
  pending.reserve(factor_);
  const SimTime t0 = sim().now();
  SimDur request_ns = 0;
  for (std::size_t slot = 0; slot < factor_; ++slot) {
    const std::size_t owner = ring().slot_index(key, slot);
    if (!membership().up(owner)) continue;
    request_ns += issue_cost(value ? value->size() : 0);
    kv::Request req = set_request(key, value);
    req.trace = phases->trace;
    pending.push_back(client().call_async(node_of(owner), std::move(req)));
  }
  phases->request_ns += request_ns;
  if (pending.empty()) {
    co_return Status{StatusCode::kUnavailable, "no replica stored"};
  }
  StatusCode worst = StatusCode::kOk;
  std::size_t stored = 0;
  bool bounced = false;
  for (const auto& f : pending) {
    const kv::Response resp = co_await f.wait();
    if (resp.code == StatusCode::kOk) {
      ++stored;
    } else {
      worst = resp.code;
      if (resp.code == StatusCode::kWrongEpoch) bounced = true;
    }
  }
  if (obs::Tracer* const tr = tracer(); tr != nullptr) {
    // The issue slices serialize on the client CPU inside call_async; one
    // combined request span keeps the tracer totals equal to the phase sum.
    tr->complete(trace_pid(), phases->trace_tid, "set/request", "engine", t0,
                 request_ns, phases->trace.trace_id);
    tr->complete(trace_pid(), phases->trace_tid, "set/fanout", "engine",
                 t0 + request_ns,
                 std::max<SimDur>(0, sim().now() - t0 - request_ns),
                 phases->trace.trace_id);
  }
  if (bounced) {
    co_return Status{StatusCode::kWrongEpoch, "stale placement epoch"};
  }
  if (stored == 0) co_return Status{StatusCode::kUnavailable, "no replica stored"};
  co_return Status{worst};
}

}  // namespace hpres::resilience
