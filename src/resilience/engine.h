// Resilience engine interface: the client-side layer that turns one
// application Set/Get into the fan-out required by a resilience scheme
// (replication or online erasure coding), with blocking (memcached_set/get)
// and non-blocking (memcached_iset/iget + wait) entry points.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "common/histogram.h"
#include "kv/client.h"
#include "kv/hash_ring.h"
#include "kv/membership.h"
#include "resilience/arpe.h"

namespace hpres::resilience {

/// Client-side time decomposition of one operation class, mirroring the
/// paper's Figure 9: Request (issue), Encode/Decode (compute) and
/// Wait-Response (everything else in the op's latency).
struct PhaseBreakdown {
  SimDur request_ns = 0;
  SimDur compute_ns = 0;
  SimDur wait_ns = 0;

  [[nodiscard]] SimDur total() const noexcept {
    return request_ns + compute_ns + wait_ns;
  }
};

struct EngineStats {
  LatencyHistogram set_latency;
  LatencyHistogram get_latency;
  PhaseBreakdown set_phases;
  PhaseBreakdown get_phases;
  std::uint64_t sets = 0;
  std::uint64_t gets = 0;
  std::uint64_t dels = 0;
  std::uint64_t set_failures = 0;
  std::uint64_t get_failures = 0;
  std::uint64_t degraded_gets = 0;  ///< gets that needed failure handling
  std::uint64_t fallback_gets = 0;  ///< CD gets retried via the server path
};

/// Everything a client-side engine needs from its host. All referenced
/// objects must outlive the engine.
struct EngineContext {
  sim::Simulator* sim = nullptr;
  kv::Client* client = nullptr;
  const kv::HashRing* ring = nullptr;
  const kv::Membership* membership = nullptr;
  const std::vector<net::NodeId>* server_nodes = nullptr;
  /// False = size-only payloads (benchmark mode, costs still charged).
  bool materialize = true;
};

class Engine {
 public:
  Engine(EngineContext ctx, ArpeParams arpe_params)
      : ctx_(ctx), arpe_(*ctx.sim, arpe_params) {}
  virtual ~Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Number of simultaneous server failures this engine tolerates.
  [[nodiscard]] virtual std::size_t fault_tolerance() const noexcept = 0;

  /// Blocking Set: resolves when the value is durable per the scheme.
  /// Records latency and phase stats.
  sim::Task<Status> set(kv::Key key, SharedBytes value);

  /// Blocking Get: resolves with the reassembled value.
  sim::Task<Result<Bytes>> get(kv::Key key);

  /// Blocking Delete: removes the value from every replica / every
  /// fragment owner. OK if any copy existed; kNotFound if none did.
  sim::Task<Status> del(kv::Key key);

  /// Non-blocking variants: admission through the ARPE window, completion
  /// through the returned future (memcached_iset/iget + wait/test).
  sim::Future<Status> iset(kv::Key key, SharedBytes value);
  sim::Future<Result<Bytes>> iget(kv::Key key);

  /// Bulk operations (the paper's Section III-B bulk access patterns):
  /// every element is submitted through the ARPE window before any is
  /// awaited, so the D/B transfer factors of the batch overlap.
  sim::Task<std::vector<Status>> mset(std::vector<kv::Key> keys,
                                      std::vector<SharedBytes> values);
  sim::Task<std::vector<Result<Bytes>>> mget(std::vector<kv::Key> keys);

  /// Waits for every in-flight non-blocking op (memcached_wait on all).
  sim::Task<void> wait_all() { return arpe_.drain(); }

  [[nodiscard]] EngineStats& stats() noexcept { return stats_; }
  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }
  [[nodiscard]] Arpe& arpe() noexcept { return arpe_; }

 protected:
  /// Phase accounting filled by implementations during one operation.
  struct OpPhases {
    SimDur request_ns = 0;
    SimDur compute_ns = 0;
  };

  virtual sim::Task<Status> do_set(kv::Key key, SharedBytes value,
                                   OpPhases* phases) = 0;
  virtual sim::Task<Result<Bytes>> do_get(kv::Key key, OpPhases* phases) = 0;
  virtual sim::Task<Status> do_del(kv::Key key) = 0;

  [[nodiscard]] const EngineContext& ctx() const noexcept { return ctx_; }
  [[nodiscard]] sim::Simulator& sim() const noexcept { return *ctx_.sim; }
  [[nodiscard]] kv::Client& client() const noexcept { return *ctx_.client; }
  [[nodiscard]] const kv::HashRing& ring() const noexcept {
    return *ctx_.ring;
  }
  [[nodiscard]] const kv::Membership& membership() const noexcept {
    return *ctx_.membership;
  }
  [[nodiscard]] net::NodeId node_of(std::size_t server_index) const {
    return (*ctx_.server_nodes)[server_index];
  }

  /// Estimated CPU cost of issuing one request (used for the Request phase
  /// of the breakdown; the true serialization happens on the client CPU).
  [[nodiscard]] SimDur issue_cost(std::size_t payload) const noexcept {
    return client().params().issue_cpu_ns +
           static_cast<SimDur>(client().params().issue_ns_per_byte *
                               static_cast<double>(payload));
  }

 private:
  static sim::Task<void> iset_coro(Engine* self, kv::Key key,
                                   SharedBytes value,
                                   sim::Promise<Status> out);
  static sim::Task<void> iget_coro(Engine* self, kv::Key key,
                                   sim::Promise<Result<Bytes>> out);

  EngineContext ctx_;
  Arpe arpe_;
  EngineStats stats_;
};

}  // namespace hpres::resilience
