// Resilience engine interface: the client-side layer that turns one
// application Set/Get into the fan-out required by a resilience scheme
// (replication or online erasure coding), with blocking (memcached_set/get)
// and non-blocking (memcached_iset/iget + wait) entry points.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "common/histogram.h"
#include "kv/client.h"
#include "obs/flight_recorder.h"
#include "kv/hash_ring.h"
#include "kv/membership.h"
#include "kv/placement.h"
#include "obs/latency.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "resilience/arpe.h"
#include "resilience/load_tracker.h"

namespace hpres::resilience {

/// Client-side time decomposition of one operation class, mirroring the
/// paper's Figure 9: Request (issue), Encode/Decode (compute) and
/// Wait-Response (everything else in the op's latency).
struct PhaseBreakdown {
  SimDur request_ns = 0;
  SimDur compute_ns = 0;
  SimDur wait_ns = 0;

  [[nodiscard]] SimDur total() const noexcept {
    return request_ns + compute_ns + wait_ns;
  }
};

/// Hedged-read configuration for the erasure Get path. The default (delta
/// 0, load_aware false) disables both mechanisms and keeps the byte-exact
/// legacy path — benchmarks and determinism tests compare against it.
struct HedgeParams {
  /// Extra fragment fetches issued beyond k; the op completes on the first
  /// k decodable arrivals and cancels the rest. 0 = hedging off.
  std::uint32_t delta = 0;
  /// Delay before the hedges fire. The op hedges only if its first k
  /// fetches have not all arrived after max(delay_ns, the running get
  /// latency quantile `delay_quantile`). 0/0 = hedge immediately with the
  /// initial fan-out.
  SimDur delay_ns = 0;
  /// Running quantile of this engine's own get latency used as an adaptive
  /// hedge delay ("hedge only past the p95"); 0 disables the adaptive term.
  double delay_quantile = 0.0;
  /// Order candidate fragments by per-server load score (queue-depth and
  /// RTT EWMAs from piggybacked responses) instead of fixed slot order.
  bool load_aware = false;

  /// Either mechanism routes Gets onto the hedged code path.
  [[nodiscard]] bool enabled() const noexcept {
    return delta > 0 || load_aware;
  }
};

/// Packed-stripe (batched small-object) write-path configuration. The
/// default (pack_threshold 0) disables packing entirely and keeps the
/// byte-exact legacy path — the determinism suite gates on it.
struct PackParams {
  /// Values strictly smaller than this are appended into shared stripes
  /// instead of being striped per key. 0 = packing off. The value-size
  /// sweep uses ~4 KiB, where per-key striping is dominated by padding
  /// and per-fragment metadata.
  std::size_t pack_threshold = 0;
  /// Stripe payload budget: a stripe seals when the next record would
  /// exceed it. Bigger stripes amortize fragment/key overhead over more
  /// records but raise the group-commit batch latency.
  std::size_t stripe_capacity = 16 * 1024;
  /// A stripe also seals this long after its first append, so a trickle
  /// of writes never waits for a full stripe (group commit timer).
  SimDur group_commit_interval = 50'000;  // 50 us

  [[nodiscard]] bool enabled() const noexcept { return pack_threshold > 0; }
};

struct EngineStats {
  LatencyHistogram set_latency;
  LatencyHistogram get_latency;
  PhaseBreakdown set_phases;
  PhaseBreakdown get_phases;
  std::uint64_t sets = 0;
  std::uint64_t gets = 0;
  std::uint64_t dels = 0;
  std::uint64_t set_failures = 0;
  std::uint64_t get_failures = 0;
  std::uint64_t degraded_gets = 0;   ///< gets that needed failure handling
  std::uint64_t degraded_sets = 0;   ///< sets that worked around a dead owner
  std::uint64_t fallback_gets = 0;   ///< CD gets retried via the server path
  std::uint64_t failover_fetches = 0;  ///< alternate-fragment fetches after a
                                       ///< chosen fragment failed or timed out
  std::uint64_t hedged_gets = 0;     ///< gets that fired >= 1 hedge fetch
  std::uint64_t hedges_fired = 0;    ///< extra fragment fetches issued
  std::uint64_t hedge_wins = 0;      ///< hedge fetches that made the decode set
  std::uint64_t hedges_suppressed = 0;  ///< hedges skipped: no spare buffer
  std::uint64_t hedge_wasted_bytes = 0;  ///< fragment bytes fetched but unused
  // Packed-stripe write path (zero when packing is off).
  std::uint64_t packed_sets = 0;        ///< sets routed through stripe packing
  std::uint64_t stripes_sealed = 0;     ///< stripes handed to group commit
  std::uint64_t stripes_timer_sealed = 0;  ///< sealed by the commit timer
  std::uint64_t stripe_record_bytes = 0;   ///< payload bytes packed (pre-code)
  std::uint64_t stripe_fill_x1000 = 0;  ///< mean sealed fill ratio, per-mille
  std::uint64_t packed_get_hits = 0;    ///< gets resolved via stripe locator
  std::uint64_t packed_degraded_gets = 0;  ///< packed gets that decoded
  std::uint64_t staged_reads = 0;       ///< gets served from the staging map
  // Elastic placement (zero with no placement plane attached).
  std::uint64_t wrong_epoch_retries = 0;  ///< sets re-run after a kWrongEpoch
                                          ///< bounce re-resolved the owners
  std::uint64_t placement_fallback_gets = 0;  ///< mid-migration misses served
                                              ///< via the pre-cutover ring

  /// Registers every field into `reg` under component "engine".
  void register_with(obs::MetricsRegistry& reg, std::string node,
                     std::string op = {}) const {
    const obs::MetricLabels labels{"engine", std::move(node), std::move(op)};
    reg.bind_counter("engine.sets", labels, &sets);
    reg.bind_counter("engine.gets", labels, &gets);
    reg.bind_counter("engine.dels", labels, &dels);
    reg.bind_counter("engine.set_failures", labels, &set_failures);
    reg.bind_counter("engine.get_failures", labels, &get_failures);
    reg.bind_counter("engine.degraded_gets", labels, &degraded_gets);
    reg.bind_counter("engine.degraded_sets", labels, &degraded_sets);
    reg.bind_counter("engine.fallback_gets", labels, &fallback_gets);
    reg.bind_counter("engine.failover_fetches", labels, &failover_fetches);
    reg.bind_counter("engine.hedged_gets", labels, &hedged_gets);
    reg.bind_counter("engine.hedges_fired", labels, &hedges_fired);
    reg.bind_counter("engine.hedge_wins", labels, &hedge_wins);
    reg.bind_counter("engine.hedges_suppressed", labels, &hedges_suppressed);
    reg.bind_counter("engine.hedge_wasted_bytes", labels, &hedge_wasted_bytes);
    reg.bind_counter("engine.packed_sets", labels, &packed_sets);
    reg.bind_counter("engine.stripes_sealed", labels, &stripes_sealed);
    reg.bind_counter("engine.stripes_timer_sealed", labels,
                     &stripes_timer_sealed);
    reg.bind_counter("engine.stripe_record_bytes", labels,
                     &stripe_record_bytes);
    // Fill ratio is a level (running mean), not an event count.
    reg.bind_gauge("engine.stripe_fill_x1000", labels, &stripe_fill_x1000);
    reg.bind_counter("engine.packed_get_hits", labels, &packed_get_hits);
    reg.bind_counter("engine.packed_degraded_gets", labels,
                     &packed_degraded_gets);
    reg.bind_counter("engine.staged_reads", labels, &staged_reads);
    reg.bind_counter("engine.wrong_epoch_retries", labels,
                     &wrong_epoch_retries);
    reg.bind_counter("engine.placement_fallback_gets", labels,
                     &placement_fallback_gets);
    reg.bind_counter("engine.set_phase.request_ns", labels,
                     &set_phases.request_ns);
    reg.bind_counter("engine.set_phase.compute_ns", labels,
                     &set_phases.compute_ns);
    reg.bind_counter("engine.set_phase.wait_ns", labels, &set_phases.wait_ns);
    reg.bind_counter("engine.get_phase.request_ns", labels,
                     &get_phases.request_ns);
    reg.bind_counter("engine.get_phase.compute_ns", labels,
                     &get_phases.compute_ns);
    reg.bind_counter("engine.get_phase.wait_ns", labels, &get_phases.wait_ns);
    reg.bind_histogram("engine.set_latency_ns", labels, &set_latency);
    reg.bind_histogram("engine.get_latency_ns", labels, &get_latency);
  }
};

/// Everything a client-side engine needs from its host. All referenced
/// objects must outlive the engine.
struct EngineContext {
  sim::Simulator* sim = nullptr;
  kv::Client* client = nullptr;
  const kv::HashRing* ring = nullptr;
  const kv::Membership* membership = nullptr;
  const std::vector<net::NodeId>* server_nodes = nullptr;
  /// False = size-only payloads (benchmark mode, costs still charged).
  bool materialize = true;
  /// Optional span tracer (may be null / disabled). Purely observational:
  /// never consulted for timing decisions.
  obs::Tracer* tracer = nullptr;
  std::uint32_t trace_pid = 0;
  /// Optional always-on latency percentile recorder. Top-level set/get
  /// latencies land here keyed by {op, scheme, degraded}; nested
  /// (composite-engine) calls do not record, so every op counts once.
  obs::LatencyRecorder* recorder = nullptr;
  /// Optional flight recorder. Op start/end events land in this client's
  /// ring; failure-handling events (failover, fallback, hedge) land in the
  /// ring of the server they implicate. Purely observational.
  obs::FlightRecorder* flight = nullptr;
  /// Optional versioned placement view (cluster::PlacementManager). When
  /// set, stale-epoch Set bounces retry under the refreshed ring and
  /// mid-migration Get misses fall back to the pre-cutover placement.
  /// Null = classic fixed-membership behavior, byte-identical.
  const kv::PlacementView* placement = nullptr;
};

class Engine {
 public:
  Engine(EngineContext ctx, ArpeParams arpe_params)
      : ctx_(ctx), arpe_(*ctx.sim, arpe_params) {
    arpe_.set_tracer(ctx_.tracer, ctx_.trace_pid);
  }
  virtual ~Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Number of simultaneous server failures this engine tolerates.
  [[nodiscard]] virtual std::size_t fault_tolerance() const noexcept = 0;

  /// Blocking Set: resolves when the value is durable per the scheme.
  /// Records latency and phase stats.
  sim::Task<Status> set(kv::Key key, SharedBytes value) {
    return set_impl(std::move(key), std::move(value), {}, false, nullptr);
  }

  /// Blocking Get: resolves with the reassembled value.
  sim::Task<Result<Bytes>> get(kv::Key key) {
    return get_impl(std::move(key), {}, false, nullptr);
  }

  /// Composite-engine entry points: run the op as a causal child of
  /// `parent` (same trace id, its own lane) without a LatencyRecorder row
  /// — the enclosing op records once at the top level. `degraded`, when
  /// non-null, receives whether this op needed failure handling.
  sim::Task<Status> set_nested(kv::Key key, SharedBytes value,
                               obs::TraceContext parent,
                               bool* degraded = nullptr) {
    return set_impl(std::move(key), std::move(value), parent, true, degraded);
  }
  sim::Task<Result<Bytes>> get_nested(kv::Key key, obs::TraceContext parent,
                                      bool* degraded = nullptr) {
    return get_impl(std::move(key), parent, true, degraded);
  }

  /// Points this engine at an external lane pool (composite engines share
  /// the parent's pool so concurrent parent/child ops never collide on a
  /// Perfetto lane). The pool must outlive the engine.
  void use_lane_pool(obs::LanePool* pool) noexcept { lane_pool_ = pool; }

  /// Blocking Delete: removes the value from every replica / every
  /// fragment owner. OK if any copy existed; kNotFound if none did.
  sim::Task<Status> del(kv::Key key);

  /// Non-blocking variants: admission through the ARPE window, completion
  /// through the returned future (memcached_iset/iget + wait/test).
  sim::Future<Status> iset(kv::Key key, SharedBytes value);
  sim::Future<Result<Bytes>> iget(kv::Key key);

  /// Bulk operations (the paper's Section III-B bulk access patterns):
  /// every element is submitted through the ARPE window before any is
  /// awaited, so the D/B transfer factors of the batch overlap.
  sim::Task<std::vector<Status>> mset(std::vector<kv::Key> keys,
                                      std::vector<SharedBytes> values);
  sim::Task<std::vector<Result<Bytes>>> mget(std::vector<kv::Key> keys);

  /// Waits for every in-flight non-blocking op (memcached_wait on all).
  sim::Task<void> wait_all() { return arpe_.drain(); }

  [[nodiscard]] EngineStats& stats() noexcept { return stats_; }
  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }
  [[nodiscard]] Arpe& arpe() noexcept { return arpe_; }

  /// The per-server load tracker behind load-aware read-set selection, or
  /// nullptr for engines without one (benchmarks export its estimates as
  /// gauges when present).
  [[nodiscard]] virtual const NodeLoadTracker* load_tracker() const noexcept {
    return nullptr;
  }

  /// Attaches the cluster's versioned placement view (see
  /// EngineContext::placement). The view must outlive the engine.
  void attach_placement(const kv::PlacementView* view) noexcept {
    ctx_.placement = view;
  }

  /// Attaches a second engine of the same scheme resolved against the
  /// *pre-cutover* ring. While the placement view reports a transition in
  /// flight, Get misses retry through it and Deletes dual-issue — the data
  /// at old positions stays readable until the post-ack cleanup removes
  /// it. The prev engine must outlive this one.
  void set_prev_engine(Engine* prev) noexcept { prev_engine_ = prev; }

 protected:
  /// Phase accounting filled by implementations during one operation.
  /// `trace_tid` is the Perfetto lane this op's spans go on (0 when tracing
  /// is off); concurrent ops get distinct lanes so complete events nest.
  /// `trace` is the op's causal identity: implementations stamp it onto
  /// outgoing requests and tag child spans with its trace id. `degraded`
  /// is set by implementations whenever the op needed failure handling
  /// (dead owner worked around, failover fetch, fallback path).
  struct OpPhases {
    SimDur request_ns = 0;
    SimDur compute_ns = 0;
    std::uint64_t trace_tid = 0;
    obs::TraceContext trace;
    bool degraded = false;
  };

  virtual sim::Task<Status> do_set(kv::Key key, SharedBytes value,
                                   OpPhases* phases) = 0;
  virtual sim::Task<Result<Bytes>> do_get(kv::Key key, OpPhases* phases) = 0;
  virtual sim::Task<Status> do_del(kv::Key key) = 0;

  [[nodiscard]] const EngineContext& ctx() const noexcept { return ctx_; }
  [[nodiscard]] sim::Simulator& sim() const noexcept { return *ctx_.sim; }
  [[nodiscard]] kv::Client& client() const noexcept { return *ctx_.client; }
  [[nodiscard]] const kv::HashRing& ring() const noexcept {
    return *ctx_.ring;
  }
  [[nodiscard]] const kv::Membership& membership() const noexcept {
    return *ctx_.membership;
  }
  [[nodiscard]] net::NodeId node_of(std::size_t server_index) const {
    return (*ctx_.server_nodes)[server_index];
  }

  /// Estimated CPU cost of issuing one request (used for the Request phase
  /// of the breakdown; the true serialization happens on the client CPU).
  [[nodiscard]] SimDur issue_cost(std::size_t payload) const noexcept {
    return client().params().issue_cpu_ns +
           static_cast<SimDur>(client().params().issue_ns_per_byte *
                               static_cast<double>(payload));
  }

  /// The attached flight recorder, nullptr when absent.
  [[nodiscard]] obs::FlightRecorder* flight() const noexcept {
    return ctx_.flight;
  }

  /// The attached tracer when it is live, nullptr otherwise — one branch on
  /// the hot path when observability is off.
  [[nodiscard]] obs::Tracer* tracer() const noexcept {
    return (ctx_.tracer != nullptr && ctx_.tracer->enabled()) ? ctx_.tracer
                                                              : nullptr;
  }
  [[nodiscard]] std::uint32_t trace_pid() const noexcept {
    return ctx_.trace_pid;
  }

  /// The lane pool this engine allocates op lanes from (its own, unless
  /// use_lane_pool() pointed it elsewhere).
  [[nodiscard]] obs::LanePool& lane_pool() noexcept { return *lane_pool_; }

 private:
  static sim::Task<void> iset_coro(Engine* self, kv::Key key,
                                   SharedBytes value,
                                   sim::Promise<Status> out);
  static sim::Task<void> iget_coro(Engine* self, kv::Key key,
                                   sim::Promise<Result<Bytes>> out);

  /// Common implementation behind set()/set_nested() and get()/
  /// get_nested(). Nested ops inherit the parent's trace id and skip the
  /// LatencyRecorder (the top-level op records once).
  sim::Task<Status> set_impl(kv::Key key, SharedBytes value,
                             obs::TraceContext parent, bool nested,
                             bool* degraded_out);
  sim::Task<Result<Bytes>> get_impl(kv::Key key, obs::TraceContext parent,
                                    bool nested, bool* degraded_out);

  /// Lane pool for per-op trace tids (tid = node * kLanesPerNode + lane).
  /// Free lanes are reused lowest-first so same-seed runs allocate
  /// identically and concurrent ops land on distinct Perfetto tracks.
  [[nodiscard]] std::uint64_t lane_tid(std::uint32_t lane) const noexcept {
    return static_cast<std::uint64_t>(client().id()) *
               obs::Tracer::kLanesPerNode +
           lane;
  }

  EngineContext ctx_;
  Arpe arpe_;
  EngineStats stats_;
  obs::LanePool lanes_;
  obs::LanePool* lane_pool_ = &lanes_;
  Engine* prev_engine_ = nullptr;  ///< pre-cutover fallback (see above)
};

}  // namespace hpres::resilience
