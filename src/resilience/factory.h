// Engine factory keyed by the design names used throughout the paper's
// evaluation section, for benches and examples that sweep designs.
#pragma once

#include <memory>

#include "resilience/erasure_engine.h"
#include "resilience/replication.h"

namespace hpres::resilience {

enum class Design : std::uint8_t {
  kNoRep,     ///< single copy, non-blocking API (Memc-RDMA-NoRep baseline)
  kSyncRep,   ///< blocking F-way replication (Sync-Rep)
  kAsyncRep,  ///< non-blocking F-way replication (Async-Rep)
  kEraCeCd,
  kEraSeSd,
  kEraSeCd,
  kEraCeSd,
};

[[nodiscard]] constexpr std::string_view to_string(Design d) noexcept {
  switch (d) {
    case Design::kNoRep: return "no-rep";
    case Design::kSyncRep: return "sync-rep";
    case Design::kAsyncRep: return "async-rep";
    case Design::kEraCeCd: return "era-ce-cd";
    case Design::kEraSeSd: return "era-se-sd";
    case Design::kEraSeCd: return "era-se-cd";
    case Design::kEraCeSd: return "era-ce-sd";
  }
  return "?";
}

[[nodiscard]] constexpr bool is_erasure(Design d) noexcept {
  return d == Design::kEraCeCd || d == Design::kEraSeSd ||
         d == Design::kEraSeCd || d == Design::kEraCeSd;
}

/// Creates an engine. `codec`/`cost` are required for erasure designs (the
/// codec must outlive the engine); `rep_factor` applies to replication
/// designs (ignored for kNoRep, which always stores one copy). `hedge`
/// configures hedged/load-aware reads and only applies to erasure designs;
/// `pack` configures the batched small-object write path and only applies
/// to kEraCeCd (other designs ignore it).
[[nodiscard]] std::unique_ptr<Engine> make_engine(
    Design design, EngineContext ctx, std::uint32_t rep_factor,
    const ec::Codec* codec, ec::CostModel cost, ArpeParams arpe = {},
    HedgeParams hedge = {}, PackParams pack = {});

}  // namespace hpres::resilience
