// In-memory replication engines: the paper's baselines.
//
// Sync-Rep accesses each replica with blocking semantics, so its Set cost
// is F * (L + D/B) (Equation 2). Async-Rep overlaps the request/response
// phases of all F replica writes via non-blocking calls, approaching
// max_i(L + D/B) (Equation 6). Both read the whole value from the
// designated primary, falling back to a live replica (plus T_check) after
// failures (Equation 4).
#pragma once

#include "resilience/engine.h"

namespace hpres::resilience {

/// Common replica placement and read path: replica i of a key lives at
/// ring.slot_index(key, i), the full value stored under the key itself.
class ReplicationBase : public Engine {
 public:
  [[nodiscard]] std::size_t fault_tolerance() const noexcept override {
    return factor_ - 1;
  }
  [[nodiscard]] std::uint32_t factor() const noexcept { return factor_; }

 protected:
  ReplicationBase(EngineContext ctx, std::uint32_t factor, ArpeParams arpe);

  /// Primary read with live-replica fallback (Equation 4).
  sim::Task<Result<Bytes>> do_get(kv::Key key, OpPhases* phases) override;

  /// Deletes the key on every live replica.
  sim::Task<Status> do_del(kv::Key key) override;

  /// First live replica slot for a key, or nullopt when all are down.
  /// Sets *checked when the primary was dead (T_check owed).
  [[nodiscard]] std::optional<std::size_t> first_live_slot(
      const kv::Key& key, bool* checked) const;

  std::uint32_t factor_;
};

class SyncReplicationEngine final : public ReplicationBase {
 public:
  SyncReplicationEngine(EngineContext ctx, std::uint32_t factor,
                        ArpeParams arpe = {})
      : ReplicationBase(ctx, factor, arpe) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "sync-rep";
  }

 protected:
  sim::Task<Status> do_set(kv::Key key, SharedBytes value,
                           OpPhases* phases) override;
};

class AsyncReplicationEngine final : public ReplicationBase {
 public:
  AsyncReplicationEngine(EngineContext ctx, std::uint32_t factor,
                         ArpeParams arpe = {})
      : ReplicationBase(ctx, factor, arpe) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "async-rep";
  }

 protected:
  sim::Task<Status> do_set(kv::Key key, SharedBytes value,
                           OpPhases* phases) override;
};

}  // namespace hpres::resilience
