// Fragment repair coordinator — the recovery machinery the paper defers to
// future work ("we plan to undertake detailed recovery overhead analysis").
//
// When a failed server comes back empty (or a replacement takes its node
// id), every key keeps working in degraded mode, but each degraded Get
// pays T_decode and one fewer failure is now tolerable. The coordinator
// restores full redundancy: it discovers affected keys by scanning a live
// peer's fragment index, fetches k surviving fragments per key, rebuilds
// the missing ones with the real codec, and re-places them on their
// designated owners.
#pragma once

#include "ec/chunker.h"
#include "ec/codec.h"
#include "ec/cost_model.h"
#include "resilience/engine.h"

namespace hpres::resilience {

struct RepairStats {
  std::uint64_t keys_scanned = 0;
  std::uint64_t keys_repaired = 0;      ///< had at least one fragment rebuilt
  std::uint64_t fragments_rebuilt = 0;
  std::uint64_t bytes_rebuilt = 0;
  std::uint64_t fragments_read = 0;     ///< survivor fragments fetched
  std::uint64_t bytes_read = 0;         ///< repair network traffic
  std::uint64_t local_repairs = 0;      ///< used the codec's repair locality
  std::uint64_t unrepairable_keys = 0;  ///< fewer than k fragments survive
  std::uint64_t orphaned_keys = 0;      ///< unreconstructable leftovers found
  std::uint64_t orphan_fragments_purged = 0;  ///< stray fragments deleted

  /// Registers every field into `reg` under component "repair".
  void register_with(obs::MetricsRegistry& reg, std::string node,
                     std::string op = {}) const {
    const obs::MetricLabels labels{"repair", std::move(node), std::move(op)};
    reg.bind_counter("repair.keys_scanned", labels, &keys_scanned);
    reg.bind_counter("repair.keys_repaired", labels, &keys_repaired);
    reg.bind_counter("repair.fragments_rebuilt", labels, &fragments_rebuilt);
    reg.bind_counter("repair.bytes_rebuilt", labels, &bytes_rebuilt);
    reg.bind_counter("repair.fragments_read", labels, &fragments_read);
    reg.bind_counter("repair.bytes_read", labels, &bytes_read);
    reg.bind_counter("repair.local_repairs", labels, &local_repairs);
    reg.bind_counter("repair.unrepairable_keys", labels, &unrepairable_keys);
    reg.bind_counter("repair.orphaned_keys", labels, &orphaned_keys);
    reg.bind_counter("repair.orphan_fragments_purged", labels,
                     &orphan_fragments_purged);
  }
};

class RepairCoordinator {
 public:
  /// The codec and every EngineContext referent must outlive the
  /// coordinator.
  RepairCoordinator(EngineContext ctx, const ec::Codec& codec,
                    ec::CostModel cost)
      : ctx_(ctx), codec_(&codec), cost_(cost) {}
  RepairCoordinator(const RepairCoordinator&) = delete;
  RepairCoordinator& operator=(const RepairCoordinator&) = delete;

  [[nodiscard]] const RepairStats& stats() const noexcept { return stats_; }

  /// When enabled, a key with fewer than k surviving fragments and no
  /// staged full copy is treated as deleted: its leftover fragments are
  /// purged instead of lingering forever. These orphans arise when a
  /// Delete runs while a fragment owner is down and the owner later
  /// restarts with its store intact. Off by default — purging is only
  /// safe when no in-flight writes race the repair pass, and
  /// unrepairable-key accounting should otherwise stay non-destructive.
  void set_purge_orphans(bool on) noexcept { purge_orphans_ = on; }

  /// Enumerates the base keys whose fragments a live server holds
  /// (kScan). Repairing every key discovered through any single live
  /// server covers all keys that server shares a fragment with.
  sim::Task<Result<std::vector<kv::Key>>> discover(
      std::size_t via_server_index);

  /// Restores every missing fragment of `key` whose designated owner is
  /// alive. No-op (OK) when the key is fully intact; kTooManyFailures when
  /// fewer than k fragments survive.
  sim::Task<Status> repair_key(kv::Key key);

  /// Discovers via every live server and repairs every affected key.
  sim::Task<Status> repair_all();

 private:
  /// The attached tracer when live (repair spans: probe, fetch,
  /// reconstruct, replace), nullptr otherwise.
  [[nodiscard]] obs::Tracer* tracer() const noexcept {
    return (ctx_.tracer != nullptr && ctx_.tracer->enabled()) ? ctx_.tracer
                                                              : nullptr;
  }
  /// Repairs run sequentially, so one reserved lane per coordinator node
  /// suffices (the top lane, unreachable by engine op allocation under any
  /// realistic ARPE window).
  [[nodiscard]] std::uint64_t trace_tid() const noexcept {
    return static_cast<std::uint64_t>(ctx_.client->id()) *
               obs::Tracer::kLanesPerNode +
           (obs::Tracer::kLanesPerNode - 1);
  }

  /// Deletes the surviving fragments of an unreconstructable key (see
  /// set_purge_orphans). Skips the purge when the stager still holds a
  /// staged full copy of the key — that copy can re-create the fragments.
  sim::Task<void> purge_orphan(kv::Key key, std::vector<bool> present);

  EngineContext ctx_;
  const ec::Codec* codec_;
  ec::CostModel cost_;
  RepairStats stats_;
  bool purge_orphans_ = false;
};

}  // namespace hpres::resilience
