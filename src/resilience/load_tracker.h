// Client-side per-server load estimation for read-set selection.
//
// Every Response piggybacks the responder's handler queue depth
// (kv::Response::queue_depth); the client additionally knows the RTT it
// just observed. NodeLoadTracker folds both into per-server EWMAs and
// exposes a scalar score — a simplified C3-style replica ranking (Suresh
// et al., NSDI'15): queue depth predicts waiting time, the RTT EWMA folds
// in service time and network distance. Read paths order candidate
// fragment slots by the owner's score; near-equal neighbours are broken by
// a seeded power-of-two-choices coin so ties don't deterministically pile
// onto one server.
//
// Passive only: the tracker draws no RNG and sends no probes on its own,
// so an engine that never *consults* it (hedging off, load-aware off)
// keeps bit-identical schedules while still learning from piggybacked
// depths.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace hpres::resilience {

class NodeLoadTracker {
 public:
  /// `servers` = cluster server count (indices, not NodeIds). `alpha` is
  /// the EWMA smoothing factor: higher reacts faster, lower remembers
  /// longer. 0.25 tracks a queue building over ~10 responses without
  /// thrashing on one outlier.
  explicit NodeLoadTracker(std::size_t servers, std::uint64_t seed = 1,
                           double alpha = 0.25)
      : nodes_(servers), alpha_(alpha), rng_(splitmix64(seed) ^ 0x10adULL) {}

  /// Folds a piggybacked queue depth into `server`'s estimate (response
  /// observed without an RTT measurement, e.g. a fan-out ack).
  void observe(std::size_t server, std::uint32_t queue_depth) noexcept {
    if (server >= nodes_.size()) return;
    Node& nd = nodes_[server];
    nd.queue_ewma = mix(nd.queue_ewma, static_cast<double>(queue_depth),
                        nd.samples == 0);
    ++nd.samples;
    ++total_samples_;
  }

  /// Folds a full observation: piggybacked queue depth plus the RTT the
  /// caller measured for that response.
  void observe_rtt(std::size_t server, SimDur rtt_ns,
                   std::uint32_t queue_depth) noexcept {
    if (server >= nodes_.size()) return;
    Node& nd = nodes_[server];
    const bool first = nd.samples == 0;
    nd.queue_ewma = mix(nd.queue_ewma, static_cast<double>(queue_depth), first);
    nd.rtt_ewma_us =
        mix(nd.rtt_ewma_us, static_cast<double>(rtt_ns) / 1000.0, first);
    ++nd.samples;
    ++total_samples_;
  }

  /// Scalar badness of a server: higher = slower to answer next. The
  /// (1 + q) * (1 + rtt_us) product makes either a deep queue or a long
  /// observed RTT dominate, and an unknown server (no samples) scores the
  /// neutral 1.0 — neither favoured nor avoided.
  [[nodiscard]] double score(std::size_t server) const noexcept {
    if (server >= nodes_.size()) return 1.0;
    const Node& nd = nodes_[server];
    return (1.0 + nd.queue_ewma) * (1.0 + nd.rtt_ewma_us);
  }

  [[nodiscard]] double queue_estimate(std::size_t server) const noexcept {
    return server < nodes_.size() ? nodes_[server].queue_ewma : 0.0;
  }
  [[nodiscard]] double rtt_estimate_us(std::size_t server) const noexcept {
    return server < nodes_.size() ? nodes_[server].rtt_ewma_us : 0.0;
  }
  [[nodiscard]] std::uint64_t samples(std::size_t server) const noexcept {
    return server < nodes_.size() ? nodes_[server].samples : 0;
  }

  /// Total observations across all servers. Zero means the tracker has
  /// learned nothing yet — callers use this to keep cold-start selection
  /// on the plain (deterministic) path.
  [[nodiscard]] std::uint64_t total_samples() const noexcept {
    return total_samples_;
  }

  /// Orders fragment slots cheapest-owner-first. `owner_of_slot[i]` maps
  /// slot i to its server index. The sort is stable (equal scores keep
  /// slot order); with `randomize_ties`, adjacent slots whose owner scores
  /// are within 5% are swapped by a seeded coin flip — power-of-two-choices
  /// among near-equals, so repeated selections spread over peers instead
  /// of always hitting the same "marginally best" server. Only the
  /// randomized path draws RNG.
  [[nodiscard]] std::vector<std::size_t> order_slots(
      std::span<const std::size_t> slots,
      std::span<const std::size_t> owner_of_slot, bool randomize_ties) {
    std::vector<std::size_t> out(slots.begin(), slots.end());
    auto slot_score = [&](std::size_t slot) {
      return slot < owner_of_slot.size() ? score(owner_of_slot[slot]) : 1.0;
    };
    std::stable_sort(out.begin(), out.end(),
                     [&](std::size_t a, std::size_t b) {
                       return slot_score(a) < slot_score(b);
                     });
    if (randomize_ties) {
      for (std::size_t i = 0; i + 1 < out.size(); ++i) {
        const double a = slot_score(out[i]);
        const double b = slot_score(out[i + 1]);
        if (b <= a * 1.05 && rng_.next_double() < 0.5) {
          std::swap(out[i], out[i + 1]);
        }
      }
    }
    return out;
  }

 private:
  struct Node {
    double queue_ewma = 0.0;
    double rtt_ewma_us = 0.0;
    std::uint64_t samples = 0;
  };

  [[nodiscard]] double mix(double ewma, double sample,
                           bool first) const noexcept {
    return first ? sample : (1.0 - alpha_) * ewma + alpha_ * sample;
  }

  std::vector<Node> nodes_;
  double alpha_;
  std::uint64_t total_samples_ = 0;
  Xoshiro256 rng_;
};

}  // namespace hpres::resilience
