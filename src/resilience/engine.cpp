#include "resilience/engine.h"

#include <algorithm>

namespace hpres::resilience {

sim::Task<Status> Engine::set_impl(kv::Key key, SharedBytes value,
                                   obs::TraceContext parent, bool nested,
                                   bool* degraded_out) {
  const SimTime t0 = sim().now();
  OpPhases phases;
  obs::Tracer* const tr = tracer();
  std::uint32_t lane = 0;
  if (tr != nullptr) {
    lane = lane_pool_->acquire();
    phases.trace_tid = lane_tid(lane);
    // Nested (composite-engine) ops continue the parent's trace; top-level
    // ops start a fresh one. trace_id stays 0 when tracing is disabled, so
    // nothing downstream tags or propagates.
    phases.trace = parent.valid()
                       ? parent.child(phases.trace_tid)
                       : obs::TraceContext{tr->new_trace_id(),
                                           phases.trace_tid, 0};
  }
  if (!nested && ctx_.flight != nullptr) {
    ctx_.flight->record(t0, client().id(), obs::FlightEventType::kOpStart, 0,
                        0, /*code=*/0);
  }
  // Under a live placement plane, keep copies for the wrong-epoch retry
  // loop (the copies are host-side only; simulated costs are unchanged).
  kv::Key retry_key;
  SharedBytes retry_value;
  const bool placement_aware = ctx_.placement != nullptr;
  if (placement_aware) {
    retry_key = key;
    retry_value = value;
  }
  Status status = co_await do_set(std::move(key), std::move(value), &phases);
  if (placement_aware) {
    // A kWrongEpoch bounce means some owner installed a newer epoch than
    // this op was stamped with. The shared ring is already the new one
    // (the authority swaps it before streaming installs), so re-running
    // the scheme re-resolves owners and stamps the fresh epoch. Bounded:
    // epochs only move forward and cutovers are rare per op lifetime.
    for (int retry = 0;
         status.code() == StatusCode::kWrongEpoch && retry < 3; ++retry) {
      ++stats_.wrong_epoch_retries;
      phases.degraded = true;
      status = co_await do_set(retry_key, retry_value, &phases);
    }
  }
  const SimDur total = sim().now() - t0;
  if (tr != nullptr) {
    tr->complete(trace_pid(), phases.trace_tid, "set", "engine", t0, total,
                 phases.trace.trace_id);
    lane_pool_->release(lane);
  }
  ++stats_.sets;
  if (!status.ok()) ++stats_.set_failures;
  stats_.set_latency.record(total);
  stats_.set_phases.request_ns += phases.request_ns;
  stats_.set_phases.compute_ns += phases.compute_ns;
  stats_.set_phases.wait_ns +=
      std::max<SimDur>(0, total - phases.request_ns - phases.compute_ns);
  if (degraded_out != nullptr) *degraded_out = phases.degraded;
  if (!nested && ctx_.recorder != nullptr) {
    ctx_.recorder->record("set", name(), phases.degraded, total,
                          phases.trace.trace_id);
  }
  if (!nested && ctx_.flight != nullptr) {
    if (phases.degraded) {
      ctx_.flight->record(sim().now(), client().id(),
                          obs::FlightEventType::kDegraded, 0, 0, /*code=*/0);
    }
    ctx_.flight->record(sim().now(), client().id(),
                        obs::FlightEventType::kOpEnd,
                        static_cast<std::uint64_t>(total),
                        phases.degraded ? 1 : 0, /*code=*/0);
  }
  co_return status;
}

sim::Task<Result<Bytes>> Engine::get_impl(kv::Key key,
                                          obs::TraceContext parent,
                                          bool nested, bool* degraded_out) {
  const SimTime t0 = sim().now();
  OpPhases phases;
  obs::Tracer* const tr = tracer();
  std::uint32_t lane = 0;
  if (tr != nullptr) {
    lane = lane_pool_->acquire();
    phases.trace_tid = lane_tid(lane);
    phases.trace = parent.valid()
                       ? parent.child(phases.trace_tid)
                       : obs::TraceContext{tr->new_trace_id(),
                                           phases.trace_tid, 0};
  }
  if (!nested && ctx_.flight != nullptr) {
    ctx_.flight->record(t0, client().id(), obs::FlightEventType::kOpStart, 0,
                        0, /*code=*/1);
  }
  kv::Key fallback_key;
  const bool placement_aware = ctx_.placement != nullptr;
  if (placement_aware) fallback_key = key;
  Result<Bytes> result = co_await do_get(std::move(key), &phases);
  if (placement_aware && !result.ok() && ctx_.placement->in_transition &&
      prev_engine_ != nullptr) {
    // Mid-migration miss: the fragments may not have reached their new
    // owners yet. Retry under the pre-cutover ring — data at old positions
    // survives until the post-ack cleanup, so between the two placements
    // every durably written value stays readable.
    bool prev_degraded = false;
    Result<Bytes> prev = co_await prev_engine_->get_nested(
        fallback_key, phases.trace, &prev_degraded);
    if (prev.ok()) {
      ++stats_.placement_fallback_gets;
      phases.degraded = true;
      result = std::move(prev);
    }
  }
  const SimDur total = sim().now() - t0;
  if (tr != nullptr) {
    tr->complete(trace_pid(), phases.trace_tid, "get", "engine", t0, total,
                 phases.trace.trace_id);
    lane_pool_->release(lane);
  }
  ++stats_.gets;
  if (!result.ok()) ++stats_.get_failures;
  stats_.get_latency.record(total);
  stats_.get_phases.request_ns += phases.request_ns;
  stats_.get_phases.compute_ns += phases.compute_ns;
  stats_.get_phases.wait_ns +=
      std::max<SimDur>(0, total - phases.request_ns - phases.compute_ns);
  if (degraded_out != nullptr) *degraded_out = phases.degraded;
  if (!nested && ctx_.recorder != nullptr) {
    ctx_.recorder->record("get", name(), phases.degraded, total,
                          phases.trace.trace_id);
  }
  if (!nested && ctx_.flight != nullptr) {
    if (phases.degraded) {
      ctx_.flight->record(sim().now(), client().id(),
                          obs::FlightEventType::kDegraded, 0, 0, /*code=*/1);
    }
    ctx_.flight->record(sim().now(), client().id(),
                        obs::FlightEventType::kOpEnd,
                        static_cast<std::uint64_t>(total),
                        phases.degraded ? 1 : 0, /*code=*/1);
  }
  co_return result;
}

sim::Task<std::vector<Status>> Engine::mset(
    std::vector<kv::Key> keys, std::vector<SharedBytes> values) {
  std::vector<sim::Future<Status>> pending;
  pending.reserve(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    pending.push_back(iset(std::move(keys[i]),
                           i < values.size() ? std::move(values[i])
                                             : SharedBytes{}));
  }
  std::vector<Status> out;
  out.reserve(pending.size());
  for (const auto& f : pending) out.push_back(co_await f.wait());
  co_return out;
}

sim::Task<std::vector<Result<Bytes>>> Engine::mget(
    std::vector<kv::Key> keys) {
  std::vector<sim::Future<Result<Bytes>>> pending;
  pending.reserve(keys.size());
  for (auto& key : keys) pending.push_back(iget(std::move(key)));
  std::vector<Result<Bytes>> out;
  out.reserve(pending.size());
  for (const auto& f : pending) out.push_back(co_await f.wait());
  co_return out;
}

sim::Task<Status> Engine::del(kv::Key key) {
  ++stats_.dels;
  if (ctx_.placement != nullptr && ctx_.placement->in_transition &&
      prev_engine_ != nullptr) {
    // Mid-migration delete: fragments may sit at old positions, new ones,
    // or both, so unlink under both rings. OK if either placement held it.
    kv::Key prev_key = key;
    const Status cur = co_await do_del(std::move(key));
    const Status prev = co_await prev_engine_->do_del(std::move(prev_key));
    if (cur.ok() || prev.ok()) co_return Status::Ok();
    co_return cur;
  }
  co_return co_await do_del(std::move(key));
}

sim::Future<Status> Engine::iset(kv::Key key, SharedBytes value) {
  sim::Promise<Status> promise(sim());
  sim::Future<Status> future = promise.get_future();
  arpe_.submit();  // visible to wait_all immediately (REQ_QUEUE semantics)
  sim().spawn(iset_coro(this, std::move(key), std::move(value),
                        std::move(promise)));
  return future;
}

sim::Future<Result<Bytes>> Engine::iget(kv::Key key) {
  sim::Promise<Result<Bytes>> promise(sim());
  sim::Future<Result<Bytes>> future = promise.get_future();
  arpe_.submit();
  sim().spawn(iget_coro(this, std::move(key), std::move(promise)));
  return future;
}

sim::Task<void> Engine::iset_coro(Engine* self, kv::Key key,
                                  SharedBytes value,
                                  sim::Promise<Status> out) {
  co_await self->arpe_.admit();
  const Status status = co_await self->set(std::move(key), std::move(value));
  self->arpe_.complete();
  out.set_value(status);
}

sim::Task<void> Engine::iget_coro(Engine* self, kv::Key key,
                                  sim::Promise<Result<Bytes>> out) {
  co_await self->arpe_.admit();
  Result<Bytes> result = co_await self->get(std::move(key));
  self->arpe_.complete();
  out.set_value(std::move(result));
}

}  // namespace hpres::resilience
