// Pre-registered buffer pool of the ARPE (Section IV-A): a fixed number of
// RDMA-registered bounce buffers. Operations hold one buffer for their
// lifetime; exhaustion applies backpressure (the request queues) rather
// than failing, and the pool records how often that happened.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "sim/sync.h"

namespace hpres::resilience {

struct BufferPoolStats {
  std::uint64_t acquisitions = 0;
  std::uint64_t backpressure_waits = 0;  ///< acquire had to queue
  std::uint32_t high_water = 0;          ///< max buffers simultaneously held

  /// Registers every field into `reg` under component "bufpool".
  void register_with(obs::MetricsRegistry& reg, std::string node,
                     std::string op = {}) const {
    const obs::MetricLabels labels{"bufpool", std::move(node), std::move(op)};
    reg.bind_counter("bufpool.acquisitions", labels, &acquisitions);
    reg.bind_counter("bufpool.backpressure_waits", labels,
                     &backpressure_waits);
    // high_water is a watermark, not a monotone event count: export it
    // with gauge semantics (rate() over a watermark is meaningless).
    reg.bind_gauge("bufpool.high_water", labels, &high_water);
  }
};

class BufferPool {
 public:
  BufferPool(sim::Simulator& sim, std::uint32_t buffers)
      : sem_(sim, buffers), total_(buffers) {}

  [[nodiscard]] std::uint32_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint32_t in_use() const noexcept {
    return total_ - sem_.available();
  }
  [[nodiscard]] const BufferPoolStats& stats() const noexcept { return stats_; }

  /// Acquires one registered buffer, queueing under exhaustion.
  sim::Task<void> acquire() {
    ++stats_.acquisitions;
    if (!sem_.try_acquire()) {
      ++stats_.backpressure_waits;
      co_await sem_.acquire();
    }
    stats_.high_water = std::max(stats_.high_water, in_use());
  }

  /// Non-blocking opportunistic acquire for best-effort work (hedged
  /// fetches): fails when no buffer is free OR an admission is already
  /// queued for one — hedges must never steal a buffer a queued op is
  /// waiting on (that would turn a latency optimisation into a throughput
  /// regression).
  [[nodiscard]] bool try_acquire() {
    if (sem_.waiting() > 0 || !sem_.try_acquire()) return false;
    ++stats_.acquisitions;
    stats_.high_water = std::max(stats_.high_water, in_use());
    return true;
  }

  void release() { sem_.release(); }

 private:
  sim::Semaphore sem_;
  std::uint32_t total_;
  BufferPoolStats stats_;
};

}  // namespace hpres::resilience
